//! IDD-current-based DRAM power model (DRAMPower / Micron-calculator
//! methodology — the paper derives DRAM energy from the Micron DDR4 power
//! calculator, its ref. 46).
//!
//! Average power is assembled from datasheet IDD currents: background
//! standby power (IDD2N/IDD3N weighted by how long rows are open),
//! activate/precharge power (IDD0 minus the standby already counted),
//! read/write burst power (IDD4R/IDD4W minus active standby), and refresh
//! power (IDD5B over tRFC every tREFI).

use crate::config::{Cycle, DramConfig};
use crate::controller::RunStats;

/// Datasheet IDD currents (mA, per rank) and supply voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IddParams {
    /// Supply voltage (V).
    pub vdd: f64,
    /// One-bank activate-precharge current.
    pub idd0: f64,
    /// Precharge standby current.
    pub idd2n: f64,
    /// Active standby current.
    pub idd3n: f64,
    /// Burst read current.
    pub idd4r: f64,
    /// Burst write current.
    pub idd4w: f64,
    /// Burst refresh current.
    pub idd5b: f64,
}

impl IddParams {
    /// Representative DDR5-4800 ×8 device currents (per rank of 8 devices,
    /// scaled; in the same spirit as the Micron calculator defaults).
    pub fn ddr5_4800() -> Self {
        Self {
            vdd: 1.1,
            idd0: 8.0 * 60.0,
            idd2n: 8.0 * 50.0,
            idd3n: 8.0 * 58.0,
            idd4r: 8.0 * 140.0,
            idd4w: 8.0 * 130.0,
            idd5b: 8.0 * 190.0,
        }
    }
}

/// Average-power breakdown in milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerReport {
    /// Background (standby) power.
    pub background_mw: f64,
    /// Activate/precharge power.
    pub act_pre_mw: f64,
    /// Read/write burst power.
    pub rd_wr_mw: f64,
    /// Refresh power.
    pub refresh_mw: f64,
}

impl PowerReport {
    /// Total average power (mW).
    pub fn total_mw(&self) -> f64 {
        self.background_mw + self.act_pre_mw + self.rd_wr_mw + self.refresh_mw
    }

    /// Total energy over `duration` cycles, in picojoules.
    pub fn energy_pj(&self, duration: Cycle, cfg: &DramConfig) -> f64 {
        let seconds = cfg.cycles_to_ns(duration) * 1e-9;
        self.total_mw() * seconds * 1e9 // mW × s = mJ = 1e9 pJ
    }

    /// Builds the report from run statistics over `duration` cycles.
    ///
    /// The active-standby fraction is estimated from activations: each ACT
    /// keeps its bank open ≈ tRAS; with `banks_per_rank` banks per rank the
    /// per-rank "some-row-open" duty cycle saturates quickly under load.
    ///
    /// # Panics
    ///
    /// Panics if `duration == 0`.
    pub fn from_stats(
        stats: &RunStats,
        duration: Cycle,
        cfg: &DramConfig,
        idd: &IddParams,
    ) -> Self {
        assert!(duration > 0, "duration must be positive");
        let t = &cfg.timing;
        let ranks = f64::from(cfg.topology.ranks);
        let dur = duration as f64;
        let acts = stats.energy.activations as f64;
        let bursts = stats.energy.rd_wr_bits as f64 / (f64::from(cfg.topology.burst_bytes) * 8.0);
        let refreshes = stats.energy.refreshes as f64;

        // Duty cycles.
        let open_cycles = (acts * t.t_ras as f64).min(dur * ranks);
        let active_frac = open_cycles / (dur * ranks);
        let burst_frac = (bursts * t.t_bl as f64 / dur).min(ranks) / ranks;
        let refresh_frac = (refreshes * t.t_rfc as f64 / dur).min(ranks) / ranks;

        let p = |ma: f64| ma * idd.vdd; // mA × V = mW
        let background = ranks * (active_frac * p(idd.idd3n) + (1.0 - active_frac) * p(idd.idd2n));
        // Activate/precharge: IDD0 above the active-standby floor, for tRC
        // per activation.
        let act_power_each = (p(idd.idd0) - p(idd.idd3n)).max(0.0);
        // tFAW caps concurrent row cycles at ~4 per rank.
        let act_duty = (acts * t.t_rc as f64 / dur).min(ranks * 4.0);
        let act_pre = act_duty * act_power_each;
        let rd_wr = ranks * burst_frac * (p(idd.idd4r) - p(idd.idd3n)).max(0.0);
        let refresh = ranks * refresh_frac * (p(idd.idd5b) - p(idd.idd2n)).max(0.0);
        Self {
            background_mw: background,
            act_pre_mw: act_pre,
            rd_wr_mw: rd_wr,
            refresh_mw: refresh,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PhysAddr;
    use crate::controller::{Controller, ReadRequest, SchedulePolicy};

    fn run(n: u64) -> (RunStats, Cycle) {
        let cfg = DramConfig::ddr5_4800();
        let mut ctl = Controller::new(cfg, SchedulePolicy::FrFcfs);
        for i in 0..n {
            let mul = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ctl.enqueue(ReadRequest::to_host(
                i,
                PhysAddr {
                    channel: 0,
                    rank: (mul >> 5) as u32 % 2,
                    bank_group: (mul >> 9) as u32 % 8,
                    bank: (mul >> 17) as u32 % 4,
                    row: (mul >> 25) as u32 % 1024,
                    col_byte: 0,
                },
                4,
            ));
        }
        ctl.run();
        let finish = ctl.stats().finish;
        (ctl.stats().clone(), finish)
    }

    #[test]
    fn idle_system_draws_background_only() {
        let cfg = DramConfig::ddr5_4800();
        let stats = RunStats::default();
        let p = PowerReport::from_stats(&stats, 10_000, &cfg, &IddParams::ddr5_4800());
        assert!(p.background_mw > 0.0);
        assert_eq!(p.act_pre_mw, 0.0);
        assert_eq!(p.rd_wr_mw, 0.0);
        assert_eq!(p.refresh_mw, 0.0);
    }

    #[test]
    fn busier_runs_draw_more_power() {
        let cfg = DramConfig::ddr5_4800();
        let idd = IddParams::ddr5_4800();
        let (light_stats, light_dur) = run(50);
        let (heavy_stats, heavy_dur) = run(2_000);
        let light = PowerReport::from_stats(&light_stats, light_dur.max(1), &cfg, &idd);
        let heavy = PowerReport::from_stats(&heavy_stats, heavy_dur.max(1), &cfg, &idd);
        assert!(
            heavy.total_mw() > light.total_mw(),
            "heavy {} vs light {}",
            heavy.total_mw(),
            light.total_mw()
        );
    }

    #[test]
    fn energy_consistent_with_power() {
        let cfg = DramConfig::ddr5_4800();
        let idd = IddParams::ddr5_4800();
        let (stats, dur) = run(500);
        let p = PowerReport::from_stats(&stats, dur, &cfg, &idd);
        let e = p.energy_pj(dur, &cfg);
        // P × t identity.
        let seconds = cfg.cycles_to_ns(dur) * 1e-9;
        assert!((e - p.total_mw() * seconds * 1e9).abs() < 1.0);
        assert!(e > 0.0);
    }

    #[test]
    fn duty_cycles_bounded() {
        // Even absurd counter values cannot push fractions beyond physical
        // bounds (min-clamps in from_stats).
        let cfg = DramConfig::ddr5_4800();
        let idd = IddParams::ddr5_4800();
        let mut stats = RunStats::default();
        stats.energy.activations = u32::MAX as u64;
        stats.energy.rd_wr_bits = u32::MAX as u64 * 512;
        stats.energy.refreshes = 1_000_000;
        let p = PowerReport::from_stats(&stats, 1_000, &cfg, &idd);
        // All duty cycles clamped: total bounded by the sum of per-rank
        // component ceilings.
        let ranks = 2.0;
        let ceiling = ranks * (idd.idd3n + 4.0 * idd.idd0 + idd.idd4r + idd.idd5b) * idd.vdd;
        assert!(p.total_mw() < ceiling, "{}", p.total_mw());
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_rejected() {
        let cfg = DramConfig::ddr5_4800();
        PowerReport::from_stats(&RunStats::default(), 0, &cfg, &IddParams::ddr5_4800());
    }
}
