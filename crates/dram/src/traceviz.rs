//! Command-trace visualization export.
//!
//! Converts a recorded command trace into the Chrome tracing JSON format
//! (`chrome://tracing` / [Perfetto](https://ui.perfetto.dev)): one track per
//! bank, one slice per command with its occupancy duration. Written by hand
//! (no serialization dependency) — the format is simple enough.

use std::io::Write;

use crate::command::{CommandKind, IssuedCommand};
use crate::config::{DramConfig, TimingParams};

/// Duration a command occupies its bank, for display purposes.
fn display_duration(kind: CommandKind, t: &TimingParams) -> u64 {
    match kind {
        CommandKind::Act | CommandKind::ActSa => t.t_rcd,
        CommandKind::Rd => t.t_bl,
        CommandKind::Wr => t.t_bl,
        CommandKind::Pre => t.t_rp,
        CommandKind::SelSa => t.t_ra,
        CommandKind::Ref => t.t_rfc,
    }
}

/// Writes `trace` as Chrome tracing JSON to `w`.
///
/// Timestamps are in nanoseconds (the format's microsecond field scaled by
/// the configured clock); tracks are named `rank R / bg G / bank B`.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_chrome_trace<W: Write>(
    trace: &[IssuedCommand],
    cfg: &DramConfig,
    mut w: W,
) -> std::io::Result<()> {
    writeln!(w, "[")?;
    let mut first = true;
    for ic in trace {
        let a = ic.command.addr;
        let tid = a.flat_bank(&cfg.topology);
        let ts = cfg.cycles_to_ns(ic.cycle);
        let dur = cfg
            .cycles_to_ns(display_duration(ic.command.kind, &cfg.timing))
            .max(0.001);
        if !first {
            writeln!(w, ",")?;
        }
        first = false;
        // Complete event ("X") per command; pid 0, tid = flat bank.
        write!(
            w,
            "{{\"name\":\"{} r{} c{}\",\"cat\":\"dram\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":0,\"tid\":{},\"args\":{{\"rank\":{},\"bank_group\":{},\"bank\":{}}}}}",
            ic.command.kind, a.row, a.col_byte, ts, dur, tid, a.rank, a.bank_group, a.bank
        )?;
    }
    // Thread-name metadata so tracks read as banks.
    let topo = &cfg.topology;
    for rank in 0..topo.ranks {
        for bg in 0..topo.bank_groups {
            for bank in 0..topo.banks_per_group {
                let tid = (rank * topo.bank_groups + bg) * topo.banks_per_group + bank;
                if !first {
                    writeln!(w, ",")?;
                }
                first = false;
                write!(
                    w,
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"args\":{{\"name\":\"rank {rank} / bg {bg} / bank {bank}\"}}}}"
                )?;
            }
        }
    }
    writeln!(w, "\n]")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PhysAddr;
    use crate::controller::{Controller, ReadRequest, SchedulePolicy};

    #[test]
    fn emits_valid_json_shape() {
        let cfg = DramConfig::ddr5_4800();
        let mut ctl = Controller::new(cfg.clone(), SchedulePolicy::FrFcfs);
        ctl.record_trace();
        for i in 0..4u64 {
            ctl.enqueue(ReadRequest::to_host(
                i,
                PhysAddr {
                    channel: 0,
                    rank: 0,
                    bank_group: i as u32 % 2,
                    bank: 0,
                    row: 1,
                    col_byte: 0,
                },
                2,
            ));
        }
        ctl.run();
        let trace = ctl.trace().unwrap();
        let mut buf = Vec::new();
        write_chrome_trace(&trace, &cfg, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("[\n"));
        assert!(s.trim_end().ends_with(']'));
        // Every command produced one slice.
        assert_eq!(s.matches("\"ph\":\"X\"").count(), trace.len());
        // Metadata names every bank track.
        assert_eq!(
            s.matches("thread_name").count(),
            cfg.topology.banks_per_channel() as usize
        );
        // Balanced braces (cheap well-formedness check).
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn empty_trace_is_valid() {
        let cfg = DramConfig::ddr5_4800();
        let mut buf = Vec::new();
        write_chrome_trace(&[], &cfg, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("thread_name"));
    }
}
