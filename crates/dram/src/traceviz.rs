//! Command-trace visualization export, built on `recross-obs` tracks.
//!
//! [`dram_tracks`] lays out one obs track per bank (named `rank R / bg G /
//! bank B`) under a caller-supplied parent, plus lazily created per-region
//! PE/DQ occupancy tracks; [`record_commands`] folds a recorded
//! [`IssuedCommand`] trace onto those tracks — one span per command with
//! its occupancy duration, one `burst` span per read on the PE/DQ track of
//! the region its data lands in ([`DataScope`]). Any consumer can then
//! export the recorder with `recross_obs::write_chrome_trace`; the
//! standalone [`write_chrome_trace`] here keeps the original
//! single-channel convenience API (`chrome://tracing` /
//! [Perfetto](https://ui.perfetto.dev)).

use std::io::Write;

use recross_obs::{Recorder, TrackId};

use crate::command::{CommandKind, DataScope, IssuedCommand};
use crate::config::{Cycle, DramConfig, TimingParams};

/// Duration a command occupies its bank, for display purposes.
pub(crate) fn display_duration(kind: CommandKind, t: &TimingParams) -> u64 {
    match kind {
        CommandKind::Act | CommandKind::ActSa => t.t_rcd,
        CommandKind::Rd => t.t_bl,
        CommandKind::Wr => t.t_bl,
        CommandKind::Pre => t.t_rp,
        CommandKind::SelSa => t.t_ra,
        CommandKind::Ref => t.t_rfc,
    }
}

/// Obs-track layout for one DRAM channel: eager per-bank command tracks
/// plus lazily created per-region PE/DQ occupancy tracks (only regions
/// that actually receive data get a track).
#[derive(Debug)]
pub struct DramTracks {
    parent: TrackId,
    banks: Vec<TrackId>,
    pe_rank: Vec<Option<TrackId>>,
    pe_group: Vec<Option<TrackId>>,
    pe_bank: Vec<Option<TrackId>>,
}

/// Creates the per-bank command tracks for one channel under `parent`,
/// named exactly like the original trace exporter (`rank R / bg G /
/// bank B`), in flat-bank order.
pub fn dram_tracks(rec: &mut Recorder, parent: TrackId, cfg: &DramConfig) -> DramTracks {
    let topo = &cfg.topology;
    let mut banks = Vec::with_capacity(topo.banks_per_channel() as usize);
    for rank in 0..topo.ranks {
        for bg in 0..topo.bank_groups {
            for bank in 0..topo.banks_per_group {
                banks.push(rec.track(&format!("rank {rank} / bg {bg} / bank {bank}"), Some(parent)));
            }
        }
    }
    DramTracks {
        parent,
        banks,
        pe_rank: vec![None; topo.ranks as usize],
        pe_group: vec![None; (topo.ranks * topo.bank_groups) as usize],
        pe_bank: vec![None; topo.banks_per_channel() as usize],
    }
}

fn region_track(
    rec: &mut Recorder,
    parent: TrackId,
    slot: &mut Option<TrackId>,
    name: &str,
) -> TrackId {
    *slot.get_or_insert_with(|| rec.track(name, Some(parent)))
}

/// Records `trace` onto the channel's tracks, shifting every command by
/// `offset` cycles (so per-batch traces priced at cycle 0 can be placed at
/// their real dispatch time). Each command becomes a span on its bank's
/// track; each read additionally becomes a `burst` span on the PE/DQ
/// track of the region its data lands in — bank PE, bank-group PE, or the
/// rank DQ (which rank-level PEs and host-bound reads share).
pub fn record_commands(
    rec: &mut Recorder,
    tracks: &mut DramTracks,
    cfg: &DramConfig,
    trace: &[IssuedCommand],
    offset: Cycle,
) {
    if !rec.is_enabled() {
        return;
    }
    let topo = cfg.topology;
    let t = cfg.timing;
    for ic in trace {
        let a = ic.command.addr;
        let flat = a.flat_bank(&topo) as usize;
        let start = offset + ic.cycle;
        let end = start + display_duration(ic.command.kind, &t);
        let name = format!("{} r{} c{}", ic.command.kind, a.row, a.col_byte);
        rec.span(tracks.banks[flat], &name, start, end);
        if ic.command.kind == CommandKind::Rd {
            let burst_start = start + t.t_cl;
            let burst_end = burst_start + t.t_bl;
            let track = match ic.command.data_scope {
                DataScope::Bank => region_track(
                    rec,
                    tracks.parent,
                    &mut tracks.pe_bank[flat],
                    &format!("PE bank r{} / g{} / b{}", a.rank, a.bank_group, a.bank),
                ),
                DataScope::BankGroup => {
                    let g = a.flat_bank_group(&topo) as usize;
                    region_track(
                        rec,
                        tracks.parent,
                        &mut tracks.pe_group[g],
                        &format!("PE bg r{} / g{}", a.rank, a.bank_group),
                    )
                }
                DataScope::Rank => region_track(
                    rec,
                    tracks.parent,
                    &mut tracks.pe_rank[a.rank as usize],
                    &format!("PE/DQ rank {}", a.rank),
                ),
            };
            rec.span(track, "burst", burst_start, burst_end);
        }
    }
}

/// Writes `trace` as Chrome tracing JSON to `w`: builds a one-channel obs
/// track forest ([`dram_tracks`] under a `DRAM channel` root), records the
/// commands, and exports through the unified obs exporter. Timestamps are
/// microseconds scaled by the configured clock.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_chrome_trace<W: Write>(
    trace: &[IssuedCommand],
    cfg: &DramConfig,
    w: W,
) -> std::io::Result<()> {
    let mut rec = Recorder::new();
    let root = rec.track("DRAM channel", None);
    let mut tracks = dram_tracks(&mut rec, root, cfg);
    record_commands(&mut rec, &mut tracks, cfg, trace, 0);
    debug_assert_eq!(rec.validate(), Ok(()));
    recross_obs::write_chrome_trace(&rec, cfg.cycles_to_ns(1), w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PhysAddr;
    use crate::controller::{Controller, ReadRequest, SchedulePolicy};

    #[test]
    fn emits_valid_json_shape() {
        let cfg = DramConfig::ddr5_4800();
        let mut ctl = Controller::new(cfg.clone(), SchedulePolicy::FrFcfs);
        ctl.record_trace();
        for i in 0..4u64 {
            ctl.enqueue(ReadRequest::to_host(
                i,
                PhysAddr {
                    channel: 0,
                    rank: 0,
                    bank_group: i as u32 % 2,
                    bank: 0,
                    row: 1,
                    col_byte: 0,
                },
                2,
            ));
        }
        ctl.run();
        let trace = ctl.trace().unwrap();
        let reads = trace
            .iter()
            .filter(|ic| ic.command.kind == CommandKind::Rd)
            .count();
        let mut buf = Vec::new();
        write_chrome_trace(&trace, &cfg, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("[\n"));
        assert!(s.trim_end().ends_with(']'));
        // One slice per command plus one burst span per read (the PE/DQ
        // occupancy interval).
        assert_eq!(s.matches("\"ph\":\"X\"").count(), trace.len() + reads);
        // Metadata names every bank track, the channel root, and the one
        // rank DQ track the host-bound reads created.
        assert_eq!(
            s.matches("thread_name").count(),
            cfg.topology.banks_per_channel() as usize + 2
        );
        assert!(s.contains("\"PE/DQ rank 0\""));
        // Balanced braces (cheap well-formedness check).
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn empty_trace_is_valid() {
        let cfg = DramConfig::ddr5_4800();
        let mut buf = Vec::new();
        write_chrome_trace(&[], &cfg, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("thread_name"));
    }

    #[test]
    fn offset_shifts_command_spans() {
        let cfg = DramConfig::ddr5_4800();
        let trace = [IssuedCommand {
            command: crate::command::Command {
                kind: CommandKind::Pre,
                addr: PhysAddr {
                    channel: 0,
                    rank: 0,
                    bank_group: 0,
                    bank: 0,
                    row: 0,
                    col_byte: 0,
                },
                data_scope: DataScope::Bank,
            },
            cycle: 5,
        }];
        let mut rec = Recorder::new();
        let root = rec.track("ch", None);
        let mut tracks = dram_tracks(&mut rec, root, &cfg);
        record_commands(&mut rec, &mut tracks, &cfg, &trace, 100);
        let e = rec.events().last().unwrap();
        assert_eq!(e.ts, 105);
        assert_eq!(rec.validate(), Ok(()));
    }
}
