//! DRAM commands and issue records.

use crate::addr::PhysAddr;
use crate::config::Cycle;

/// A DRAM command kind.
///
/// `ActSa` and `SelSa` are the ReCross SALP extension (§4.1): `ActSa`
/// activates a row into its *local* (subarray) row buffer without seizing
/// the global bit-lines; `SelSa` switches which subarray's local buffer is
/// connected to the global row buffer (constrained by `tRA`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandKind {
    /// Activate a row into the (global) row buffer.
    Act,
    /// Read one burst from the open row.
    Rd,
    /// Write one burst into the open row (embedding updates, §4.5).
    Wr,
    /// Precharge the bank.
    Pre,
    /// SALP: activate a row into the subarray-local row buffer.
    ActSa,
    /// SALP: connect a subarray's local buffer to the global row buffer.
    SelSa,
    /// All-bank refresh of one rank (addr's rank field selects it); the
    /// rank is unavailable for tRFC.
    Ref,
}

impl CommandKind {
    /// Whether this command performs a row activation (counts ACT energy
    /// and tFAW/tRRD windows).
    pub fn is_activate(self) -> bool {
        matches!(self, CommandKind::Act | CommandKind::ActSa)
    }
}

impl core::fmt::Display for CommandKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            CommandKind::Act => "ACT",
            CommandKind::Rd => "RD",
            CommandKind::Wr => "WR",
            CommandKind::Pre => "PRE",
            CommandKind::ActSa => "ACT_SA",
            CommandKind::SelSa => "SEL_SA",
            CommandKind::Ref => "REF",
        };
        f.write_str(s)
    }
}

/// Which shared device I/O resources a read's data crosses — determined by
/// the NMP level its data is destined for. A read into a bank-level PE uses
/// only the bank's own column path; a bank-group-level read additionally
/// uses the bank-group I/O (tCCD_L scope); rank-level and host-bound reads
/// also use the rank-shared I/O (tCCD_S scope).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DataScope {
    /// Data stays within the bank (bank-level PE).
    Bank,
    /// Data crosses the bank-group I/O (bank-group-level PE).
    BankGroup,
    /// Data crosses the rank I/O (rank-level PE or host-bound).
    #[default]
    Rank,
}

/// A command bound to an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Command {
    /// What to do.
    pub kind: CommandKind,
    /// Where (row/col meaning depends on `kind`).
    pub addr: PhysAddr,
    /// For RD: how far the data travels (ignored for other kinds).
    pub data_scope: DataScope,
}

impl Command {
    /// A command whose data (if any) travels the full rank path.
    pub fn new(kind: CommandKind, addr: PhysAddr) -> Self {
        Self {
            kind,
            addr,
            data_scope: DataScope::Rank,
        }
    }

    /// A read whose data stops at the given scope.
    pub fn read_to(addr: PhysAddr, data_scope: DataScope) -> Self {
        Self {
            kind: CommandKind::Rd,
            addr,
            data_scope,
        }
    }
}

/// A command together with the cycle it was issued — the unit of the
/// command traces used by Figure 6 and the timing-invariant checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IssuedCommand {
    /// The command.
    pub command: Command,
    /// Issue cycle.
    pub cycle: Cycle,
}

impl core::fmt::Display for IssuedCommand {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "@{:>8} {} {}",
            self.cycle, self.command.kind, self.command.addr
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr() -> PhysAddr {
        PhysAddr {
            channel: 0,
            rank: 0,
            bank_group: 1,
            bank: 2,
            row: 3,
            col_byte: 0,
        }
    }

    #[test]
    fn activate_classification() {
        assert!(CommandKind::Act.is_activate());
        assert!(CommandKind::ActSa.is_activate());
        assert!(!CommandKind::Rd.is_activate());
        assert!(!CommandKind::Wr.is_activate());
        assert!(!CommandKind::Pre.is_activate());
        assert!(!CommandKind::SelSa.is_activate());
        assert!(!CommandKind::Ref.is_activate());
    }

    #[test]
    fn display_formats() {
        let ic = IssuedCommand {
            command: Command::new(CommandKind::Rd, addr()),
            cycle: 42,
        };
        let s = format!("{ic}");
        assert!(s.contains("RD"));
        assert!(s.contains("bg1"));
    }
}
