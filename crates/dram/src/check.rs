//! Independent command-trace validation.
//!
//! Replays a recorded command trace against a *fresh* [`TimingState`] and
//! reports any violation: a command issued earlier than the constraint
//! engine allows, or in an illegal bank state. Because this replayer shares
//! no scheduling code with the controllers, a controller bug cannot
//! self-certify — this is the backbone of the property-test suite.

use crate::command::IssuedCommand;
use crate::config::{TimingParams, Topology};
use crate::timing::{TimingError, TimingState};

/// A violation found in a command trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Command issued `deficit` cycles before its earliest legal cycle.
    TooEarly {
        /// Index into the trace.
        index: usize,
        /// The offending command.
        command: IssuedCommand,
        /// How many cycles too early it was.
        deficit: u64,
    },
    /// Command illegal in the replayed state.
    Illegal {
        /// Index into the trace.
        index: usize,
        /// The offending command.
        command: IssuedCommand,
        /// Why it was illegal.
        error: TimingError,
    },
    /// Trace is not sorted by issue cycle.
    OutOfOrder {
        /// Index of the command that went back in time.
        index: usize,
    },
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Violation::TooEarly {
                index,
                command,
                deficit,
            } => write!(
                f,
                "command #{index} ({command}) issued {deficit} cycles early"
            ),
            Violation::Illegal {
                index,
                command,
                error,
            } => {
                write!(f, "command #{index} ({command}) illegal: {error}")
            }
            Violation::OutOfOrder { index } => {
                write!(f, "command #{index} issued before its predecessor")
            }
        }
    }
}

/// Replays `trace` and returns every violation found (empty = valid).
///
/// The trace must be sorted by cycle; same-cycle commands to different
/// resources are fine.
pub fn check_trace(
    topo: Topology,
    timing: TimingParams,
    trace: &[IssuedCommand],
) -> Vec<Violation> {
    let mut state = TimingState::new(topo, timing);
    let mut violations = Vec::new();
    let mut last_cycle = 0;
    for (index, ic) in trace.iter().enumerate() {
        if ic.cycle < last_cycle {
            violations.push(Violation::OutOfOrder { index });
            continue;
        }
        last_cycle = ic.cycle;
        match state.earliest(&ic.command) {
            Ok(earliest) if ic.cycle >= earliest => {
                state.commit(&ic.command, ic.cycle);
            }
            Ok(earliest) => {
                violations.push(Violation::TooEarly {
                    index,
                    command: *ic,
                    deficit: earliest - ic.cycle,
                });
                // Commit at the legal time so later checks stay meaningful.
                state.commit(&ic.command, earliest);
            }
            Err(error) => {
                violations.push(Violation::Illegal {
                    index,
                    command: *ic,
                    error,
                });
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PhysAddr;
    use crate::command::{Command, CommandKind};
    use crate::config::DramConfig;
    use crate::controller::{BusScope, Controller, ReadRequest, SchedulePolicy};

    fn cfg() -> DramConfig {
        DramConfig::ddr5_4800()
    }

    fn addr(row: u32, col: u32) -> PhysAddr {
        PhysAddr {
            channel: 0,
            rank: 0,
            bank_group: 0,
            bank: 0,
            row,
            col_byte: col,
        }
    }

    fn ic(kind: CommandKind, a: PhysAddr, cycle: u64) -> IssuedCommand {
        IssuedCommand {
            command: Command::new(kind, a),
            cycle,
        }
    }

    #[test]
    fn valid_trace_passes() {
        let c = cfg();
        let t = c.timing;
        let trace = vec![
            ic(CommandKind::Act, addr(1, 0), 0),
            ic(CommandKind::Rd, addr(1, 0), t.t_rcd),
        ];
        assert!(check_trace(c.topology, t, &trace).is_empty());
    }

    #[test]
    fn early_read_detected() {
        let c = cfg();
        let t = c.timing;
        let trace = vec![
            ic(CommandKind::Act, addr(1, 0), 0),
            ic(CommandKind::Rd, addr(1, 0), t.t_rcd - 5),
        ];
        let v = check_trace(c.topology, t, &trace);
        assert!(matches!(v[0], Violation::TooEarly { deficit: 5, .. }));
    }

    #[test]
    fn illegal_read_detected() {
        let c = cfg();
        let trace = vec![ic(CommandKind::Rd, addr(1, 0), 100)];
        let v = check_trace(c.topology, c.timing, &trace);
        assert!(matches!(v[0], Violation::Illegal { .. }));
    }

    #[test]
    fn out_of_order_detected() {
        let c = cfg();
        let t = c.timing;
        let trace = vec![
            ic(CommandKind::Act, addr(1, 0), 100),
            ic(CommandKind::Rd, addr(1, 0), 90),
        ];
        let v = check_trace(c.topology, t, &trace);
        assert!(matches!(v[0], Violation::OutOfOrder { index: 1 }));
    }

    #[test]
    fn controller_traces_are_always_valid() {
        // Smoke variant of the proptest: random-ish requests through every
        // scope/policy must yield violation-free traces.
        let c = cfg();
        for (policy, scope, salp) in [
            (SchedulePolicy::FrFcfs, BusScope::Channel, false),
            (SchedulePolicy::Fcfs, BusScope::Rank, false),
            (SchedulePolicy::FrFcfs, BusScope::BankGroup, false),
            (SchedulePolicy::LocalityAware, BusScope::Bank, true),
        ] {
            let mut ctl = Controller::new(c.clone(), policy);
            ctl.record_trace();
            for i in 0..200u64 {
                let mul = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                ctl.enqueue(ReadRequest {
                    id: i,
                    addr: PhysAddr {
                        channel: 0,
                        rank: (mul >> 7) as u32 % 2,
                        bank_group: (mul >> 13) as u32 % 8,
                        bank: (mul >> 23) as u32 % 4,
                        row: (mul >> 31) as u32 % 4096,
                        col_byte: ((mul >> 43) as u32 % 124) * 64,
                    },
                    bursts: 1 + (mul % 4) as u32, // max col 123*64 + 4 bursts fits the 8 KiB row
                    ready_at: 0,
                    dest: scope,
                    salp,
                    auto_precharge: !salp && i % 3 == 0,
                    write: !salp && i % 7 == 0,
                });
            }
            ctl.run();
            let trace = ctl.trace().unwrap();
            let v = check_trace(c.topology, c.timing, &trace);
            assert!(
                v.is_empty(),
                "{policy:?}/{scope:?}/salp={salp}: {:?}",
                &v[..v.len().min(3)]
            );
        }
    }
}
