//! Shared-bus occupancy modeling.
//!
//! Two kinds of serialized resources matter for NMP performance:
//!
//! 1. **Data buses.** Where a read burst's data lands depends on the NMP
//!    level (paper §3.2, Figure 6): with a bank-group PE the burst occupies
//!    the bank-group-local I/O; with a rank PE it additionally occupies the
//!    rank DQ; without NMP it crosses the channel bus to the host. A
//!    [`BusSet`] tracks the busy-until time of every bus at one level of
//!    granularity.
//!
//! 2. **The NMP-instruction channel** (§4.2). Each lookup's instruction must
//!    reach the DIMM before its first command; the C/A pins (optionally plus
//!    idle DQ pins — the two-stage technique) provide a fixed number of bits
//!    per cycle. [`InstructionBus`] hands out delivery slots.

use crate::config::Cycle;

/// A set of independent serialized buses, one per resource instance.
#[derive(Debug, Clone)]
pub struct BusSet {
    busy_until: Vec<Cycle>,
    busy_total: Vec<Cycle>,
}

impl BusSet {
    /// Creates `n` idle buses.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one bus");
        Self {
            busy_until: vec![0; n],
            busy_total: vec![0; n],
        }
    }

    /// Number of buses.
    pub fn len(&self) -> usize {
        self.busy_until.len()
    }

    /// Whether the set is empty (never true).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Earliest cycle bus `i` can accept a new occupancy starting no earlier
    /// than `not_before`.
    pub fn earliest(&self, i: usize, not_before: Cycle) -> Cycle {
        self.busy_until[i].max(not_before)
    }

    /// Reserves bus `i` for `[start, start + duration)`.
    ///
    /// # Panics
    ///
    /// Panics if the bus is still busy at `start` (callers must use
    /// [`BusSet::earliest`]).
    pub fn reserve(&mut self, i: usize, start: Cycle, duration: Cycle) {
        assert!(
            start >= self.busy_until[i],
            "bus {i} busy until {} but reserved at {start}",
            self.busy_until[i]
        );
        self.busy_until[i] = start + duration;
        self.busy_total[i] += duration;
    }

    /// Busy-until time of bus `i`.
    pub fn busy_until(&self, i: usize) -> Cycle {
        self.busy_until[i]
    }

    /// Total busy cycles accumulated on bus `i`.
    pub fn busy_total(&self, i: usize) -> Cycle {
        self.busy_total[i]
    }

    /// Utilization of bus `i` over a run of `duration` cycles, in `[0, 1]`.
    pub fn utilization(&self, i: usize, duration: Cycle) -> f64 {
        if duration == 0 {
            0.0
        } else {
            self.busy_total[i] as f64 / duration as f64
        }
    }
}

/// The NMP-instruction delivery channel: a single serialized resource
/// delivering `bits_per_cycle` instruction bits per cycle.
#[derive(Debug, Clone)]
pub struct InstructionBus {
    cycles_per_inst: Cycle,
    next_free: Cycle,
    delivered: u64,
}

impl InstructionBus {
    /// Creates a bus for `inst_bits`-bit instructions over `bits_per_cycle`
    /// pins (e.g. 82-bit instructions over 14 C/A bits, or 94 bits in
    /// two-stage mode).
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(inst_bits: u32, bits_per_cycle: u32) -> Self {
        assert!(inst_bits > 0 && bits_per_cycle > 0);
        Self {
            cycles_per_inst: Cycle::from(inst_bits.div_ceil(bits_per_cycle)),
            next_free: 0,
            delivered: 0,
        }
    }

    /// Cycles one instruction occupies the channel.
    pub fn cycles_per_instruction(&self) -> Cycle {
        self.cycles_per_inst
    }

    /// Reserves the next delivery slot at or after `not_before`; returns the
    /// cycle at which the instruction has fully arrived.
    pub fn deliver(&mut self, not_before: Cycle) -> Cycle {
        let start = self.next_free.max(not_before);
        self.next_free = start + self.cycles_per_inst;
        self.delivered += 1;
        self.next_free
    }

    /// Number of instructions delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Cycle after which the channel is idle.
    pub fn next_free(&self) -> Cycle {
        self.next_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_set_serializes() {
        let mut b = BusSet::new(2);
        assert_eq!(b.earliest(0, 0), 0);
        b.reserve(0, 0, 8);
        assert_eq!(b.earliest(0, 0), 8);
        assert_eq!(b.earliest(1, 0), 0, "other bus unaffected");
        b.reserve(0, 8, 8);
        assert_eq!(b.busy_until(0), 16);
    }

    #[test]
    #[should_panic(expected = "busy until")]
    fn double_booking_panics() {
        let mut b = BusSet::new(1);
        b.reserve(0, 0, 10);
        b.reserve(0, 5, 1);
    }

    #[test]
    fn utilization_accumulates() {
        let mut b = BusSet::new(1);
        b.reserve(0, 0, 8);
        b.reserve(0, 100, 8);
        assert_eq!(b.busy_total(0), 16);
        assert!((b.utilization(0, 160) - 0.1).abs() < 1e-12);
        assert_eq!(b.utilization(0, 0), 0.0);
    }

    #[test]
    fn instruction_bus_ca_only_vs_two_stage() {
        // 82-bit instruction over 14 C/A pins: 6 cycles; over 94: 1 cycle.
        let ca = InstructionBus::new(82, 14);
        let two = InstructionBus::new(82, 94);
        assert_eq!(ca.cycles_per_instruction(), 6);
        assert_eq!(two.cycles_per_instruction(), 1);
    }

    #[test]
    fn instruction_bus_backpressure() {
        let mut bus = InstructionBus::new(82, 14);
        let a = bus.deliver(0);
        let b = bus.deliver(0);
        assert_eq!(a, 6);
        assert_eq!(b, 12, "second instruction queues behind the first");
        let c = bus.deliver(100);
        assert_eq!(c, 106, "idle gap respected");
        assert_eq!(bus.delivered(), 3);
    }
}
