//! Physical addresses and address mapping.
//!
//! A [`PhysAddr`] names one burst-aligned location by its position in the
//! DRAM hierarchy. The mapping from linear byte addresses interleaves
//! columns across bank-groups/banks first (the usual bandwidth-friendly
//! XOR-free scheme), but accelerator models mostly construct `PhysAddr`
//! values directly from their placement logic.

use crate::config::Topology;

/// A decomposed physical DRAM location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhysAddr {
    /// Channel index.
    pub channel: u32,
    /// Rank within the channel.
    pub rank: u32,
    /// Bank group within the rank.
    pub bank_group: u32,
    /// Bank within the bank group.
    pub bank: u32,
    /// Row within the bank.
    pub row: u32,
    /// Byte offset within the row (burst-aligned for reads).
    pub col_byte: u32,
}

impl PhysAddr {
    /// Subarray containing this row.
    pub fn subarray(&self, topo: &Topology) -> u32 {
        self.row / topo.rows_per_subarray()
    }

    /// Flat bank id within the channel: `rank × banks/rank + bg × banks/bg
    /// + bank`.
    pub fn flat_bank(&self, topo: &Topology) -> u32 {
        (self.rank * topo.bank_groups + self.bank_group) * topo.banks_per_group + self.bank
    }

    /// Flat bank-group id within the channel.
    pub fn flat_bank_group(&self, topo: &Topology) -> u32 {
        self.rank * topo.bank_groups + self.bank_group
    }

    /// Checks all fields are inside the topology.
    pub fn is_valid(&self, topo: &Topology) -> bool {
        self.channel < topo.channels
            && self.rank < topo.ranks
            && self.bank_group < topo.bank_groups
            && self.bank < topo.banks_per_group
            && self.row < topo.rows_per_bank
            && self.col_byte < topo.row_bytes
    }

    /// Encodes to a linear byte address (inverse of
    /// [`AddressMapper::decode`]).
    pub fn encode(&self, topo: &Topology) -> u64 {
        let bursts_per_row = u64::from(topo.row_bytes / topo.burst_bytes);
        let burst = u64::from(self.col_byte / topo.burst_bytes);
        let within = u64::from(self.col_byte % topo.burst_bytes);
        // Order (MSB→LSB): row, rank, bank_group, bank, burst, byte.
        let mut v = u64::from(self.row);
        v = v * u64::from(topo.ranks) + u64::from(self.rank);
        v = v * u64::from(topo.bank_groups) + u64::from(self.bank_group);
        v = v * u64::from(topo.banks_per_group) + u64::from(self.bank);
        v = v * bursts_per_row + burst;
        v * u64::from(topo.burst_bytes) + within
    }
}

impl core::fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "ch{}/r{}/bg{}/b{}/row{}/col{}",
            self.channel, self.rank, self.bank_group, self.bank, self.row, self.col_byte
        )
    }
}

/// Maps linear byte addresses to [`PhysAddr`] with column-interleaving
/// across banks (consecutive bursts rotate bank, bank-group, rank; rows
/// change slowest). With [`AddressMapper::with_xor_interleave`], low row
/// bits are XOR-folded into the bank index — the permutation-based bank
/// interleave real controllers use to break row-conflict streaks on
/// power-of-two strides.
#[derive(Debug, Clone, Copy)]
pub struct AddressMapper {
    topo: Topology,
    xor_interleave: bool,
}

impl AddressMapper {
    /// Creates a mapper for the given topology.
    pub fn new(topo: Topology) -> Self {
        topo.validate();
        Self {
            topo,
            xor_interleave: false,
        }
    }

    /// Enables XOR bank interleaving (bank ^= low row bits).
    pub fn with_xor_interleave(mut self) -> Self {
        self.xor_interleave = true;
        self
    }

    /// The topology this mapper targets.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Decodes a linear byte address (single-channel; channel = 0).
    ///
    /// # Panics
    ///
    /// Panics if the address exceeds the channel capacity.
    pub fn decode(&self, addr: u64) -> PhysAddr {
        let t = &self.topo;
        assert!(addr < t.channel_bytes(), "address beyond channel capacity");
        let bursts_per_row = u64::from(t.row_bytes / t.burst_bytes);
        let mut v = addr / u64::from(t.burst_bytes);
        let within = (addr % u64::from(t.burst_bytes)) as u32;
        let burst = (v % bursts_per_row) as u32;
        v /= bursts_per_row;
        let mut bank = (v % u64::from(t.banks_per_group)) as u32;
        v /= u64::from(t.banks_per_group);
        let mut bank_group = (v % u64::from(t.bank_groups)) as u32;
        v /= u64::from(t.bank_groups);
        let rank = (v % u64::from(t.ranks)) as u32;
        v /= u64::from(t.ranks);
        let row = v as u32;
        if self.xor_interleave {
            // Fold low row bits into the bank / bank-group indices. Only
            // valid when the counts are powers of two (checked lazily: the
            // XOR stays in range via masking against count-1, which is a
            // true permutation only for powers of two).
            debug_assert!(t.banks_per_group.is_power_of_two());
            debug_assert!(t.bank_groups.is_power_of_two());
            bank ^= row & (t.banks_per_group - 1);
            bank_group ^= (row >> t.banks_per_group.trailing_zeros()) & (t.bank_groups - 1);
        }
        PhysAddr {
            channel: 0,
            rank,
            bank_group,
            bank,
            row,
            col_byte: burst * t.burst_bytes + within,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;

    fn topo() -> Topology {
        DramConfig::ddr5_4800().topology
    }

    #[test]
    fn roundtrip_decode_encode() {
        let t = topo();
        let m = AddressMapper::new(t);
        for addr in [0u64, 64, 8_192, 1 << 20, (t.channel_bytes() - 64)] {
            let p = m.decode(addr);
            assert!(p.is_valid(&t), "{p}");
            assert_eq!(p.encode(&t), addr);
        }
    }

    #[test]
    fn consecutive_bursts_same_bank_same_row() {
        // Within a row's bursts the bank doesn't change; banks rotate at row
        // granularity in this mapping.
        let m = AddressMapper::new(topo());
        let a = m.decode(0);
        let b = m.decode(64);
        assert_eq!(a.flat_bank(&topo()), b.flat_bank(&topo()));
        assert_eq!(a.row, b.row);
        assert_eq!(b.col_byte, 64);
    }

    #[test]
    fn rows_rotate_across_banks() {
        let t = topo();
        let m = AddressMapper::new(t);
        let row_bytes = u64::from(t.row_bytes);
        let a = m.decode(0);
        let b = m.decode(row_bytes);
        assert_ne!(a.flat_bank(&t), b.flat_bank(&t));
    }

    #[test]
    #[should_panic(expected = "beyond channel capacity")]
    fn decode_out_of_range_panics() {
        let t = topo();
        AddressMapper::new(t).decode(t.channel_bytes());
    }

    #[test]
    fn xor_interleave_is_bijective_per_row() {
        let t = topo();
        let plain = AddressMapper::new(t);
        let xored = AddressMapper::new(t).with_xor_interleave();
        // Within one (nonzero) row id the bank permutation must stay a
        // bijection; row 0 XORs to the identity, so probe row 5.
        let mut seen = std::collections::HashSet::new();
        let row_bytes = u64::from(t.row_bytes);
        let banks = u64::from(t.banks_per_channel());
        let base = 5 * banks; // slots of row 5
        for slot in 0..banks {
            let a = xored.decode((base + slot) * row_bytes);
            assert_eq!(a.row, 5);
            assert!(seen.insert(a.flat_bank(&t)), "bank collision at {slot}");
        }
        // And differs from the plain mapping somewhere.
        let differs = (0..banks).any(|slot| {
            plain.decode((base + slot) * row_bytes).flat_bank(&t)
                != xored.decode((base + slot) * row_bytes).flat_bank(&t)
        });
        assert!(differs);
    }

    #[test]
    fn xor_interleave_breaks_row_stride_conflicts() {
        // Strided accesses (same bank in the plain map once the stride
        // covers all banks × row) spread across banks with XOR folding.
        let t = topo();
        let xored = AddressMapper::new(t).with_xor_interleave();
        let stride = u64::from(t.row_bytes) * u64::from(t.banks_per_channel());
        let banks: std::collections::HashSet<u32> = (0..8u64)
            .map(|i| xored.decode(i * stride).flat_bank(&t))
            .collect();
        assert!(banks.len() > 1, "stride must not pin one bank");
    }

    #[test]
    fn subarray_of_row() {
        let t = topo();
        let p = PhysAddr {
            channel: 0,
            rank: 0,
            bank_group: 0,
            bank: 0,
            row: 300,
            col_byte: 0,
        };
        // 256 rows per subarray → row 300 is subarray 1.
        assert_eq!(p.subarray(&t), 1);
    }

    #[test]
    fn flat_ids_are_dense() {
        let t = topo();
        let mut seen = std::collections::HashSet::new();
        for rank in 0..t.ranks {
            for bg in 0..t.bank_groups {
                for bank in 0..t.banks_per_group {
                    let p = PhysAddr {
                        channel: 0,
                        rank,
                        bank_group: bg,
                        bank,
                        row: 0,
                        col_byte: 0,
                    };
                    assert!(seen.insert(p.flat_bank(&t)));
                    assert!(p.flat_bank(&t) < t.banks_per_channel());
                }
            }
        }
        assert_eq!(seen.len(), t.banks_per_channel() as usize);
    }
}
