//! Post-hoc bottleneck attribution over a recorded command trace.
//!
//! Folds an [`IssuedCommand`] stream into *where the cycles went*: C/A-bus
//! occupancy, data movement split by the region it stops in
//! ([`DataScope`]), row-activation (tRCD) and precharge (tRP) overhead,
//! row-buffer conflict penalties, and per-region PE busy time. This is the
//! machinery behind the `ObsReport` bottleneck section — the Fig. 11–14
//! style analyses (C/A saturation for short vectors, serial bank access,
//! tRCD/tRP overlap under SALP) computed from the same trace the Perfetto
//! exporter draws, so the numbers and the picture cannot disagree.
//!
//! Everything is integer cycles over a caller-chosen analysis window and
//! therefore byte-deterministic in JSON form.

use recross_obs::{fmt_f64, json_string};

use crate::command::{CommandKind, DataScope, IssuedCommand};
use crate::config::{Cycle, DramConfig, TimingParams, Topology};

/// Per-region PE (or DQ) busy cycles: one slot per rank, per flat bank
/// group, and per flat bank. A region is *busy* for the burst duration of
/// every read whose data stops there; the rank slot also absorbs
/// host-bound reads (rank DQ and host path share the pins).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PeBusy {
    /// Busy cycles per rank (rank-level PEs + host-bound traffic).
    pub rank: Vec<Cycle>,
    /// Busy cycles per flat bank group.
    pub bank_group: Vec<Cycle>,
    /// Busy cycles per flat bank.
    pub bank: Vec<Cycle>,
}

/// Cycle attribution of one channel's command stream over an analysis
/// window of `span` cycles.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommandAttribution {
    /// Analysis window in cycles (≥ the last command's end).
    pub span: Cycle,
    /// Total commands attributed.
    pub commands: u64,
    /// RD commands.
    pub reads: u64,
    /// WR commands.
    pub writes: u64,
    /// ACT + ACT_SA commands.
    pub activates: u64,
    /// PRE commands.
    pub precharges: u64,
    /// REF commands.
    pub refreshes: u64,
    /// C/A-bus busy cycles: one command slot per issued command (the
    /// deliberate simplification — instruction-stream occupancy from NMP
    /// inst transfer is modeled upstream in the engines).
    pub ca_busy: Cycle,
    /// Data-bus cycles for bursts that stop at a bank PE.
    pub data_bank: Cycle,
    /// Data-bus cycles for bursts that stop at a bank-group PE.
    pub data_bank_group: Cycle,
    /// Data-bus cycles on the rank DQ (rank PEs and host-bound reads).
    pub data_rank: Cycle,
    /// Cycles spent in row activation (tRCD per ACT/ACT_SA).
    pub trcd: Cycle,
    /// Cycles spent precharging (tRP per PRE).
    pub trp: Cycle,
    /// Row-buffer conflicts: re-activations of a bank with a different
    /// row than the previous activation.
    pub bank_conflicts: u64,
    /// Conflict penalty cycles: `(tRP + tRCD)` per conflict — the
    /// close-then-reopen a conflicting access pays over a row hit.
    pub bank_conflict_cycles: Cycle,
    /// Per-region PE busy time.
    pub pe: PeBusy,
}

/// Incremental attribution: the same linear fold [`from_commands`]
/// performs, exposed batch-by-batch so a serving run can attribute its
/// command stream *as it happens* instead of retaining every command
/// until the end. State is fixed-size (the accumulator plus one
/// last-opened-row slot per bank), so long streamed runs stay bounded.
///
/// Equivalence: folding batches `b₀, b₁, …` (each with its dispatch-cycle
/// offset) and taking [`snapshot`] produces *exactly* the
/// [`CommandAttribution`] that [`from_commands`] computes over the
/// concatenated, offset-shifted trace — the fold carries no cross-command
/// state other than the accumulator and per-bank open rows.
///
/// [`from_commands`]: CommandAttribution::from_commands
/// [`snapshot`]: AttributionBuilder::snapshot
#[derive(Debug, Clone)]
pub struct AttributionBuilder {
    topo: Topology,
    t: TimingParams,
    acc: CommandAttribution,
    last_row: Vec<Option<u32>>,
}

impl AttributionBuilder {
    /// An empty builder for one channel of `cfg`.
    pub fn new(cfg: &DramConfig) -> Self {
        let topo = cfg.topology;
        Self {
            topo,
            t: cfg.timing,
            acc: CommandAttribution {
                pe: PeBusy {
                    rank: vec![0; topo.ranks as usize],
                    bank_group: vec![0; (topo.ranks * topo.bank_groups) as usize],
                    bank: vec![0; topo.banks_per_channel() as usize],
                },
                ..Default::default()
            },
            last_row: vec![None; topo.banks_per_channel() as usize],
        }
    }

    /// Folds one batch of commands, shifting each command's issue cycle
    /// by `offset` (the batch's dispatch cycle) when widening the
    /// analysis window — exactly what attributing the pre-shifted
    /// concatenated trace would do.
    pub fn fold(&mut self, trace: &[IssuedCommand], offset: Cycle) {
        let topo = self.topo;
        let t = self.t;
        let a = &mut self.acc;
        for ic in trace {
            let addr = ic.command.addr;
            let flat = addr.flat_bank(&topo) as usize;
            a.commands += 1;
            a.ca_busy += 1;
            a.span = a
                .span
                .max(offset + ic.cycle + crate::traceviz::display_duration(ic.command.kind, &t));
            match ic.command.kind {
                CommandKind::Act | CommandKind::ActSa => {
                    a.activates += 1;
                    a.trcd += t.t_rcd;
                    if let Some(prev) = self.last_row[flat] {
                        if prev != addr.row {
                            a.bank_conflicts += 1;
                            a.bank_conflict_cycles += t.t_rp + t.t_rcd;
                        }
                    }
                    self.last_row[flat] = Some(addr.row);
                }
                CommandKind::Pre => {
                    a.precharges += 1;
                    a.trp += t.t_rp;
                }
                CommandKind::Rd | CommandKind::Wr => {
                    if ic.command.kind == CommandKind::Rd {
                        a.reads += 1;
                    } else {
                        a.writes += 1;
                    }
                    match ic.command.data_scope {
                        DataScope::Bank => {
                            a.data_bank += t.t_bl;
                            a.pe.bank[flat] += t.t_bl;
                        }
                        DataScope::BankGroup => {
                            a.data_bank_group += t.t_bl;
                            a.pe.bank_group[addr.flat_bank_group(&topo) as usize] += t.t_bl;
                        }
                        DataScope::Rank => {
                            a.data_rank += t.t_bl;
                            a.pe.rank[addr.rank as usize] += t.t_bl;
                        }
                    }
                }
                CommandKind::SelSa => {}
                CommandKind::Ref => a.refreshes += 1,
            }
        }
    }

    /// Commands folded so far.
    pub fn commands(&self) -> u64 {
        self.acc.commands
    }

    /// The attribution over a window of `span` cycles (widened to cover
    /// the last folded command, so fractions never exceed 1). The builder
    /// keeps accumulating afterwards.
    pub fn snapshot(&self, span: Cycle) -> CommandAttribution {
        let mut a = self.acc.clone();
        a.span = span.max(self.acc.span);
        a
    }
}

impl CommandAttribution {
    /// Attributes `trace` (cycle-sorted, as [`crate::Controller::trace`]
    /// returns) over a window of `span` cycles; the window is widened to
    /// cover the last command if `span` is too small, so fractions never
    /// exceed 1. One-shot form of [`AttributionBuilder`].
    pub fn from_commands(trace: &[IssuedCommand], cfg: &DramConfig, span: Cycle) -> Self {
        let mut b = AttributionBuilder::new(cfg);
        b.fold(trace, 0);
        b.snapshot(span)
    }

    /// `cycles / span` as a fraction in `[0, 1]`; 0 for an empty window.
    pub fn fraction(&self, cycles: Cycle) -> f64 {
        if self.span == 0 {
            0.0
        } else {
            cycles as f64 / self.span as f64
        }
    }

    /// Deterministic JSON object (see DESIGN.md "Observability").
    pub fn to_json(&self) -> String {
        let frac_vec = |v: &[Cycle]| {
            let items: Vec<String> = v.iter().map(|&c| fmt_f64(self.fraction(c))).collect();
            format!("[{}]", items.join(","))
        };
        let active = self.pe.bank.iter().filter(|&&c| c > 0).count();
        let bank_sum: Cycle = self.pe.bank.iter().sum();
        let bank_mean_active = if active == 0 {
            0.0
        } else {
            self.fraction(bank_sum) / active as f64
        };
        let bank_max = self
            .pe
            .bank
            .iter()
            .map(|&c| self.fraction(c))
            .fold(0.0, f64::max);
        format!(
            concat!(
                "{{\"span_cycles\":{},\"commands\":{},",
                "\"reads\":{},\"writes\":{},\"activates\":{},\"precharges\":{},\"refreshes\":{},",
                "\"ca_bus\":{{\"busy_cycles\":{},\"utilization\":{}}},",
                "\"data_bus\":{{\"bank_cycles\":{},\"bank_group_cycles\":{},\"rank_cycles\":{},\"rank_utilization\":{}}},",
                "\"trcd_cycles\":{},\"trp_cycles\":{},",
                "\"bank_conflicts\":{{\"count\":{},\"cycles\":{},\"fraction\":{}}},",
                "\"pe_utilization\":{{\"rank\":{},\"bank_group\":{},",
                "\"bank\":{{\"active\":{},\"mean_active\":{},\"max\":{}}}}}}}"
            ),
            self.span,
            self.commands,
            self.reads,
            self.writes,
            self.activates,
            self.precharges,
            self.refreshes,
            self.ca_busy,
            fmt_f64(self.fraction(self.ca_busy)),
            self.data_bank,
            self.data_bank_group,
            self.data_rank,
            fmt_f64(self.fraction(self.data_rank)),
            self.trcd,
            self.trp,
            self.bank_conflicts,
            self.bank_conflict_cycles,
            fmt_f64(self.fraction(self.bank_conflict_cycles)),
            frac_vec(&self.pe.rank),
            frac_vec(&self.pe.bank_group),
            active,
            fmt_f64(bank_mean_active),
            fmt_f64(bank_max),
        )
    }
}

/// Human-oriented one-line summary (used by CLI `--obs-summary` output
/// alongside the JSON).
pub fn summarize(name: &str, a: &CommandAttribution) -> String {
    format!(
        "{}: {} cmds over {} cycles — C/A {:.1}%, rank DQ {:.1}%, tRCD {:.1}%, tRP {:.1}%, conflicts {} ({:.1}%)",
        json_string(name),
        a.commands,
        a.span,
        100.0 * a.fraction(a.ca_busy),
        100.0 * a.fraction(a.data_rank),
        100.0 * a.fraction(a.trcd),
        100.0 * a.fraction(a.trp),
        a.bank_conflicts,
        100.0 * a.fraction(a.bank_conflict_cycles),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PhysAddr;
    use crate::controller::{BusScope, Controller, ReadRequest, SchedulePolicy};

    fn host_read(id: u64, row: u32, col: u32) -> ReadRequest {
        ReadRequest {
            id,
            addr: PhysAddr {
                channel: 0,
                rank: 0,
                bank_group: 0,
                bank: 0,
                row,
                col_byte: col,
            },
            bursts: 1,
            ready_at: 0,
            dest: BusScope::Channel,
            salp: false,
            auto_precharge: false,
            write: false,
        }
    }

    #[test]
    fn attributes_a_conflicting_pair_exactly() {
        let cfg = DramConfig::ddr5_4800();
        let t = cfg.timing;
        let mut ctl = Controller::new(cfg.clone(), SchedulePolicy::FrFcfs);
        ctl.record_trace();
        // Same bank, different rows: the second read pays a full
        // close-and-reopen — one row-buffer conflict.
        ctl.enqueue(host_read(1, 10, 0));
        ctl.enqueue(host_read(2, 20, 0));
        ctl.run();
        let trace = ctl.trace().unwrap();
        let a = CommandAttribution::from_commands(&trace, &cfg, ctl.stats().finish);
        assert_eq!(a.reads, 2);
        assert_eq!(a.activates, 2);
        assert_eq!(a.precharges, 1);
        assert_eq!(a.commands, 5);
        assert_eq!(a.ca_busy, 5);
        assert_eq!(a.trcd, 2 * t.t_rcd);
        assert_eq!(a.trp, t.t_rp);
        assert_eq!(a.bank_conflicts, 1);
        assert_eq!(a.bank_conflict_cycles, t.t_rp + t.t_rcd);
        // Host-bound data crosses the rank DQ.
        assert_eq!(a.data_rank, 2 * t.t_bl);
        assert_eq!(a.data_bank, 0);
        assert_eq!(a.pe.rank[0], 2 * t.t_bl);
        assert!(a.fraction(a.ca_busy) > 0.0 && a.fraction(a.ca_busy) <= 1.0);
    }

    #[test]
    fn row_hits_are_not_conflicts() {
        let cfg = DramConfig::ddr5_4800();
        let mut ctl = Controller::new(cfg.clone(), SchedulePolicy::FrFcfs);
        ctl.record_trace();
        ctl.enqueue(host_read(1, 10, 0));
        ctl.enqueue(host_read(2, 10, 64));
        ctl.run();
        let a = CommandAttribution::from_commands(
            &ctl.trace().unwrap(),
            &cfg,
            ctl.stats().finish,
        );
        assert_eq!(a.activates, 1);
        assert_eq!(a.bank_conflicts, 0);
    }

    #[test]
    fn window_widens_to_cover_the_trace() {
        let cfg = DramConfig::ddr5_4800();
        let mut ctl = Controller::new(cfg.clone(), SchedulePolicy::FrFcfs);
        ctl.record_trace();
        ctl.enqueue(host_read(1, 10, 0));
        ctl.run();
        let a = CommandAttribution::from_commands(&ctl.trace().unwrap(), &cfg, 0);
        assert!(a.span > 0);
        assert!(a.fraction(a.ca_busy) <= 1.0);
    }

    #[test]
    fn incremental_builder_matches_one_shot_attribution() {
        let cfg = DramConfig::ddr5_4800();
        // Three "batches" of traffic with row conflicts crossing batch
        // boundaries (row 10 → 20 → 10 on the same bank), dispatched at
        // increasing offsets.
        let batches: Vec<(Cycle, Vec<IssuedCommand>)> = [(10u32, 0u64), (20, 1000), (10, 2500)]
            .iter()
            .map(|&(row, offset)| {
                let mut ctl = Controller::new(cfg.clone(), SchedulePolicy::FrFcfs);
                ctl.record_trace();
                ctl.enqueue(host_read(1, row, 0));
                ctl.enqueue(host_read(2, row, 64));
                ctl.run();
                (offset, ctl.trace().unwrap().to_vec())
            })
            .collect();

        let mut builder = AttributionBuilder::new(&cfg);
        let mut concatenated: Vec<IssuedCommand> = Vec::new();
        for (offset, cmds) in &batches {
            builder.fold(cmds, *offset);
            concatenated.extend(cmds.iter().map(|ic| {
                let mut ic = *ic;
                ic.cycle += offset;
                ic
            }));
        }
        for span in [0, 5_000] {
            let incremental = builder.snapshot(span);
            let one_shot = CommandAttribution::from_commands(&concatenated, &cfg, span);
            assert_eq!(incremental, one_shot);
            assert_eq!(incremental.to_json(), one_shot.to_json());
        }
        // Conflicts crossed batch boundaries (10→20 and 20→10), proving
        // the builder carries open-row state across fold calls.
        assert_eq!(builder.snapshot(0).bank_conflicts, 2);
        assert_eq!(builder.commands(), concatenated.len() as u64);
    }

    #[test]
    fn json_is_deterministic_and_balanced() {
        let cfg = DramConfig::ddr5_4800();
        let mut ctl = Controller::new(cfg.clone(), SchedulePolicy::FrFcfs);
        ctl.record_trace();
        ctl.enqueue(host_read(1, 10, 0));
        ctl.enqueue(host_read(2, 20, 0));
        ctl.run();
        let trace = ctl.trace().unwrap();
        let a = CommandAttribution::from_commands(&trace, &cfg, ctl.stats().finish);
        let j1 = a.to_json();
        let j2 = CommandAttribution::from_commands(&trace, &cfg, ctl.stats().finish).to_json();
        assert_eq!(j1, j2);
        assert_eq!(j1.matches('{').count(), j1.matches('}').count());
        assert!(j1.contains("\"bank_conflicts\":{\"count\":1"));
    }
}
