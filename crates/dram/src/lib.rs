//! # recross-dram
//!
//! A from-scratch cycle-level DDR5 DRAM model for the ReCross reproduction
//! (Liu et al., ISCA 2023). The paper's evaluation runs on a modified
//! Ramulator; this crate is the Rust substitute, enforcing the same Table 2
//! timing constraints at command granularity:
//!
//! * [`config`] — topology (ranks / bank-groups / banks / subarrays),
//!   timing (tRCD, tCL, tRP, tRAS, tRC, tBL, tCCD_S/L, tFAW, tRRD, tRTP and
//!   the new tRA) and energy constants;
//! * [`addr`] — decomposed physical addresses and linear-address mapping;
//! * [`command`] — ACT / RD / PRE plus the SALP extension commands
//!   (`ACT_SA`, `SEL_SA`) of the paper's §4.1;
//! * [`timing`] — the constraint engine every scheduler issues through;
//! * [`controller`] — an FR-FCFS read controller with pluggable bus scopes
//!   (channel / rank / bank-group / bank — the essence of NMP levels) and
//!   the locality-aware scheduling policy of §4.1;
//! * [`bus`] — data-bus and NMP-instruction-channel occupancy (§4.2);
//! * [`energy`] — event counting → the Figure 15 energy breakdown;
//! * [`check`] — an independent trace replayer used by property tests.
//!
//! # Examples
//!
//! ```
//! use recross_dram::config::DramConfig;
//! use recross_dram::controller::{BusScope, Controller, ReadRequest, SchedulePolicy};
//! use recross_dram::addr::PhysAddr;
//!
//! let cfg = DramConfig::ddr5_4800();
//! let mut ctl = Controller::new(cfg.clone(), SchedulePolicy::FrFcfs);
//! let addr = PhysAddr { channel: 0, rank: 0, bank_group: 0, bank: 0, row: 7, col_byte: 0 };
//! // a 256-byte (64-dim f32) embedding vector = 4 bursts, host-bound
//! ctl.enqueue(ReadRequest::to_host(1, addr, 4));
//! let done = ctl.run();
//! assert_eq!(done.len(), 1);
//! // cold read: tRCD + 3 same-bank column gaps (tCCD_L) + tCL + final burst
//! assert_eq!(done[0].done_at, 40 + 3 * 12 + 40 + 8);
//! ```

pub mod addr;
pub mod attribution;
pub mod bus;
pub mod check;
pub mod command;
pub mod config;
pub mod controller;
pub mod energy;
pub mod power;
pub mod timing;
pub mod traceviz;

pub use addr::{AddressMapper, PhysAddr};
pub use attribution::{CommandAttribution, PeBusy};
pub use command::{Command, CommandKind, DataScope, IssuedCommand};
pub use config::{Cycle, DramConfig, EnergyParams, TimingParams, Topology};
pub use controller::{BusScope, Completion, Controller, ReadRequest, RunStats, SchedulePolicy};
pub use energy::{EnergyBreakdown, EnergyCounters};
pub use power::{IddParams, PowerReport};
pub use timing::{TimingError, TimingState};
pub use traceviz::{dram_tracks, record_commands, DramTracks};
