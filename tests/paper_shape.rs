//! Shape checks: the qualitative results of the paper's evaluation must
//! hold in the reproduction — who wins, in what order, and roughly by what
//! factor. Runs on a 1/100-scale trace so CI stays fast; EXPERIMENTS.md
//! records the full-scale numbers.

use recross_repro::dram::DramConfig;
use recross_repro::nmp::accel::{EmbeddingAccelerator, RunReport};
use recross_repro::nmp::{AccessProfile, CpuBaseline, RecNmp, TensorDimm, Trim};
use recross_repro::recross::config::ReCrossConfig;
use recross_repro::recross::engine::ReCross;
use recross_repro::recross::profile::analytic_profiles;
use recross_repro::workload::TraceGenerator;

fn generator() -> TraceGenerator {
    TraceGenerator::criteo_scaled(64, 100)
        .batch_size(16)
        .pooling(80)
        .batches(2)
}

fn run_all() -> Vec<RunReport> {
    let g = generator();
    let trace = g.generate(0xD17A);
    let dram = DramConfig::ddr5_4800();
    let profile = AccessProfile::from_trace(&trace);
    let profiles = analytic_profiles(&g);
    let mut out = vec![CpuBaseline::new(dram.clone()).run(&trace)];
    out.push(TensorDimm::new(dram.clone()).run(&trace));
    out.push(RecNmp::new(dram.clone()).run(&trace));
    out.push(
        Trim::bank_group(dram.clone())
            .with_profile(profile.clone())
            .run(&trace),
    );
    out.push(Trim::bank(dram.clone()).with_profile(profile).run(&trace));
    let mut sys = ReCross::new(ReCrossConfig::default_d(dram), profiles, 16.0).expect("fits");
    out.push(sys.run(&trace));
    out
}

#[test]
fn figure9_ordering_holds() {
    let r = run_all();
    let ns: Vec<f64> = r.iter().map(|x| x.ns).collect();
    let (cpu, tensordimm, recnmp, trim_g, trim_b, recross) =
        (ns[0], ns[1], ns[2], ns[3], ns[4], ns[5]);
    // Paper Figure 9: ReCross > TRiM-B > TRiM-G > RecNMP > TensorDIMM > CPU.
    // One caveat at this reduced scale: RecNMP's 1 MiB per-rank caches can
    // cover most of the shrunken hot set, letting it leapfrog TRiM-G; at
    // paper scale (see EXPERIMENTS.md) the paper's full ordering holds.
    assert!(
        recross < trim_b,
        "ReCross beats TRiM-B: {recross} vs {trim_b}"
    );
    assert!(trim_b < trim_g, "TRiM-B beats TRiM-G");
    assert!(trim_g < tensordimm, "TRiM-G beats TensorDIMM");
    assert!(recnmp < tensordimm, "RecNMP beats TensorDIMM");
    assert!(tensordimm < cpu, "TensorDIMM beats the CPU");
}

#[test]
fn figure9_factors_in_paper_band() {
    let r = run_all();
    let recross = r[5].ns;
    // Paper: ReCross ≈ 2.5× TRiM-G, 1.8× TRiM-B, 15.5× CPU. Allow generous
    // bands: the substrate differs from the authors' testbed.
    let over_trim_g = r[3].ns / recross;
    let over_trim_b = r[4].ns / recross;
    let over_cpu = r[0].ns / recross;
    assert!(
        (1.2..4.0).contains(&over_trim_g),
        "ReCross/TRiM-G = {over_trim_g}"
    );
    assert!(
        (1.2..3.0).contains(&over_trim_b),
        "ReCross/TRiM-B = {over_trim_b}"
    );
    assert!((5.0..30.0).contains(&over_cpu), "ReCross/CPU = {over_cpu}");
    // Paper §1: TRiM-B is only up to ~1.31× over TRiM-G.
    let tb_over_tg = r[3].ns / r[4].ns;
    assert!(
        (1.0..1.8).contains(&tb_over_tg),
        "TRiM-B/TRiM-G = {tb_over_tg}"
    );
}

#[test]
fn figure12_each_optimization_helps() {
    let g = generator();
    let trace = g.generate(0xD17A);
    let d = DramConfig::ddr5_4800();
    let run = |cfg: ReCrossConfig| {
        let profiles = analytic_profiles(&g);
        ReCross::new(cfg, profiles, 16.0)
            .expect("fits")
            .run(&trace)
            .ns
    };
    let base = run(ReCrossConfig::base(d.clone()));
    let sap = run({
        let mut c = ReCrossConfig::base(d.clone());
        c.sap = true;
        c
    });
    let sap_bwp = run({
        let mut c = ReCrossConfig::base(d.clone());
        c.sap = true;
        c.bwp = true;
        c
    });
    let full = run(ReCrossConfig::default_d(d));
    assert!(sap < base, "SAP helps: {sap} vs {base}");
    assert!(sap_bwp < sap, "BWP helps: {sap_bwp} vs {sap}");
    assert!(
        full <= sap_bwp * 1.02,
        "LAS does not hurt: {full} vs {sap_bwp}"
    );
    assert!(full < base * 0.8, "full stack clearly beats Base");
}

#[test]
fn figure13_recross_is_better_balanced_than_trim() {
    let r = run_all();
    let trim_b_imb = r[4].imbalance.mean;
    let recross_imb = r[5].imbalance.mean;
    assert!(
        recross_imb < trim_b_imb,
        "ReCross imbalance {recross_imb} must beat TRiM-B {trim_b_imb}"
    );
}

#[test]
fn figure14_more_pes_diminishing_returns() {
    let g = generator();
    let trace = g.generate(0xD17A);
    let d = DramConfig::ddr5_4800();
    let mut cycles = Vec::new();
    for cfg in ReCrossConfig::exploration_set(d) {
        let profiles = analytic_profiles(&g);
        let mut sys = ReCross::new(cfg, profiles, 16.0).expect("fits");
        cycles.push(sys.run(&trace).cycles as f64);
    }
    // Paper §5.4: c5 (all banks bank-level) is not much better than d.
    let d_cycles = cycles[0];
    let c5_cycles = cycles[5];
    assert!(
        d_cycles / c5_cycles < 3.0,
        "c5 should not crush d: {c5_cycles} vs {d_cycles}"
    );
}

#[test]
fn figure15_recross_saves_energy_vs_cpu_and_trim() {
    let r = run_all();
    let cpu = r[0].energy.total_pj();
    let trim_b = r[4].energy.total_pj();
    let recross = r[5].energy.total_pj();
    // Paper: 58.5% saving vs CPU, 23.7% vs TRiM-B. Require the direction
    // and a nontrivial margin.
    assert!(recross < cpu * 0.9, "ReCross {recross} vs CPU {cpu}");
    assert!(recross < trim_b, "ReCross {recross} vs TRiM-B {trim_b}");
}

#[test]
fn figure10_batch_size_does_not_degrade_speedup() {
    // Paper Fig. 10: larger batches improve performance *slightly*. Assert
    // the CPU-relative speedup does not degrade from batch 1 to batch 16
    // (both sides pay the same refresh/unit overheads).
    let d = DramConfig::ddr5_4800();
    let mut speedups = Vec::new();
    for batch in [1usize, 16] {
        let g = TraceGenerator::criteo_scaled(64, 100)
            .batch_size(batch)
            .pooling(80)
            .batches(2);
        let trace = g.generate(3);
        let cpu = CpuBaseline::new(d.clone()).run(&trace);
        let profiles = analytic_profiles(&g);
        let mut sys = ReCross::new(ReCrossConfig::default_d(d.clone()), profiles, batch as f64)
            .expect("fits");
        let r = sys.run(&trace);
        speedups.push(cpu.ns / r.ns);
    }
    assert!(
        speedups[1] > speedups[0] * 0.9,
        "batch 16 speedup {} vs batch 1 {}",
        speedups[1],
        speedups[0]
    );
}

#[test]
fn figure11_recross_scales_with_ranks() {
    let mut ns = Vec::new();
    for ranks in [2u32, 8] {
        let d = DramConfig::ddr5_4800().with_ranks(ranks);
        let g = generator();
        let trace = g.generate(4);
        let profiles = analytic_profiles(&g);
        let mut sys = ReCross::new(ReCrossConfig::default_d(d), profiles, 16.0).expect("fits");
        ns.push(sys.run(&trace).ns);
    }
    assert!(
        ns[1] < ns[0],
        "8 ranks {} must beat 2 ranks {}",
        ns[1],
        ns[0]
    );
}
