//! Property tests of the BWP partitioner and placement: for arbitrary table
//! sets and skews the LP must cover every row, respect region capacities,
//! never predict worse than the naive split, and produce injective,
//! region-consistent addresses.

use proptest::prelude::*;

use recross_repro::recross::config::{ReCrossConfig, Region};
use recross_repro::recross::profile::{analytic_profiles, TableProfile};
use recross_repro::recross::{
    bandwidth_aware_partition, naive_partition, Placement, RegionBandwidth, RegionMap,
};
use recross_repro::workload::{AccessDistribution, EmbeddingTableSpec, TraceGenerator};

fn arb_tables() -> impl Strategy<Value = Vec<(u64, f64)>> {
    // (rows, zipf alpha) per table.
    prop::collection::vec((4u64..200_000, 0.0f64..1.4), 1..12)
}

fn profiles_for(tables: &[(u64, f64)]) -> Vec<TableProfile> {
    let specs: Vec<EmbeddingTableSpec> = tables
        .iter()
        .map(|&(rows, _)| EmbeddingTableSpec::new(rows, 64))
        .collect();
    let dists: Vec<AccessDistribution> = tables
        .iter()
        .map(|&(rows, alpha)| AccessDistribution::zipf(rows, alpha))
        .collect();
    let g = TraceGenerator::new(specs, dists).pooling(20).batch_size(8);
    analytic_profiles(&g)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn partition_covers_and_fits(tables in arb_tables(), segments in 1usize..12) {
        let profiles = profiles_for(&tables);
        let cfg = ReCrossConfig::default();
        let map = RegionMap::new(&cfg);
        let bw = RegionBandwidth::from_map(&map, &cfg.dram, 256, true);
        let d = bandwidth_aware_partition(&profiles, &map, &bw, 8.0, segments)
            .expect("small tables always fit");
        // Coverage: every row of every table in exactly one region.
        for (p, split) in profiles.iter().zip(&d.splits) {
            let covered: u64 =
                Region::ALL.iter().map(|&r| split.count_in(r)).sum();
            prop_assert_eq!(covered, p.spec.rows);
        }
        // Capacity: bytes per region within bounds.
        for region in Region::ALL {
            let used: u64 = profiles
                .iter()
                .zip(&d.splits)
                .map(|(p, s)| s.count_in(region) * p.spec.vector_bytes())
                .sum();
            prop_assert!(used <= map.capacity_bytes(region));
        }
        // The latency prediction is the max over regions.
        let max = (0..3)
            .map(|j| d.region_load_bytes[j] / bw.bytes_per_cycle[j])
            .fold(0.0f64, f64::max);
        prop_assert!((max - d.predicted_cycles).abs() < 1e-6);
    }

    #[test]
    fn lp_never_predicts_worse_than_naive(tables in arb_tables()) {
        let profiles = profiles_for(&tables);
        let cfg = ReCrossConfig::default();
        let map = RegionMap::new(&cfg);
        let bw = RegionBandwidth::from_map(&map, &cfg.dram, 256, true);
        let lp = bandwidth_aware_partition(&profiles, &map, &bw, 8.0, 8)
            .expect("fits");
        let naive = naive_partition(&profiles, &map);
        let naive_latency = (0..3)
            .map(|j| naive.region_load_bytes[j] * 8.0 / bw.bytes_per_cycle[j])
            .fold(0.0f64, f64::max);
        // The naive split is a feasible point of the LP, so the LP optimum
        // cannot be worse (up to PWL discretization slack).
        prop_assert!(
            lp.predicted_cycles <= naive_latency * 1.10 + 1.0,
            "lp {} vs naive {}",
            lp.predicted_cycles,
            naive_latency
        );
    }

    #[test]
    fn placement_is_injective_and_region_consistent(tables in arb_tables()) {
        let profiles = profiles_for(&tables);
        let cfg = ReCrossConfig::default();
        let map = RegionMap::new(&cfg);
        let bw = RegionBandwidth::from_map(&map, &cfg.dram, 256, true);
        let d = bandwidth_aware_partition(&profiles, &map, &bw, 8.0, 4)
            .expect("fits");
        let placement = Placement::new(&profiles, d, map);
        let mut seen = std::collections::HashSet::new();
        for (t, p) in profiles.iter().enumerate() {
            let step = (p.spec.rows / 37).max(1);
            for rank in (0..p.spec.rows).step_by(step as usize) {
                let region = placement.region_of_rank(t, rank);
                let addr = placement.addr_of_rank(t, rank);
                prop_assert_eq!(placement.region_map().region_of(&addr), region);
                prop_assert!(
                    seen.insert((addr.rank, addr.bank_group, addr.bank, addr.row, addr.col_byte)),
                    "collision at table {} rank {}", t, rank
                );
            }
        }
    }
}
