//! Randomized tests of the BWP partitioner and placement: for arbitrary
//! table sets and skews the LP must cover every row, respect region
//! capacities, never predict worse than the naive split, and produce
//! injective, region-consistent addresses.
//!
//! Cases come from the in-repo deterministic PRNG, so every run re-checks
//! the same seeded case set (no external property-testing dependency).

use recross_repro::recross::config::{ReCrossConfig, Region};
use recross_repro::recross::profile::{analytic_profiles, TableProfile};
use recross_repro::recross::{
    bandwidth_aware_partition, naive_partition, Placement, RegionBandwidth, RegionMap,
};
use recross_repro::workload::rng::Xoshiro256pp;
use recross_repro::workload::{AccessDistribution, EmbeddingTableSpec, TraceGenerator};

/// `(rows, zipf alpha)` per table — 1..12 tables, rows 4..200_000.
fn random_tables(rng: &mut Xoshiro256pp) -> Vec<(u64, f64)> {
    let n = 1 + rng.next_bounded(11) as usize;
    (0..n)
        .map(|_| (4 + rng.next_bounded(200_000 - 4), 1.4 * rng.next_f64()))
        .collect()
}

fn profiles_for(tables: &[(u64, f64)]) -> Vec<TableProfile> {
    let specs: Vec<EmbeddingTableSpec> = tables
        .iter()
        .map(|&(rows, _)| EmbeddingTableSpec::new(rows, 64))
        .collect();
    let dists: Vec<AccessDistribution> = tables
        .iter()
        .map(|&(rows, alpha)| AccessDistribution::zipf(rows, alpha))
        .collect();
    let g = TraceGenerator::new(specs, dists).pooling(20).batch_size(8);
    analytic_profiles(&g)
}

#[test]
fn partition_covers_and_fits() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xBA_0001);
    for case in 0..32 {
        let tables = random_tables(&mut rng);
        let segments = 1 + rng.next_bounded(11) as usize;
        let profiles = profiles_for(&tables);
        let cfg = ReCrossConfig::default();
        let map = RegionMap::new(&cfg);
        let bw = RegionBandwidth::from_map(&map, &cfg.dram, 256, true);
        let d = bandwidth_aware_partition(&profiles, &map, &bw, 8.0, segments)
            .expect("small tables always fit");
        // Coverage: every row of every table in exactly one region.
        for (p, split) in profiles.iter().zip(&d.splits) {
            let covered: u64 = Region::ALL.iter().map(|&r| split.count_in(r)).sum();
            assert_eq!(covered, p.spec.rows, "case {case}");
        }
        // Capacity: bytes per region within bounds.
        for region in Region::ALL {
            let used: u64 = profiles
                .iter()
                .zip(&d.splits)
                .map(|(p, s)| s.count_in(region) * p.spec.vector_bytes())
                .sum();
            assert!(used <= map.capacity_bytes(region), "case {case}");
        }
        // The latency prediction is the max over regions.
        let max = (0..3)
            .map(|j| d.region_load_bytes[j] / bw.bytes_per_cycle[j])
            .fold(0.0f64, f64::max);
        assert!((max - d.predicted_cycles).abs() < 1e-6, "case {case}");
    }
}

#[test]
fn lp_never_predicts_worse_than_naive() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xBA_0002);
    for case in 0..32 {
        let tables = random_tables(&mut rng);
        let profiles = profiles_for(&tables);
        let cfg = ReCrossConfig::default();
        let map = RegionMap::new(&cfg);
        let bw = RegionBandwidth::from_map(&map, &cfg.dram, 256, true);
        let lp = bandwidth_aware_partition(&profiles, &map, &bw, 8.0, 8).expect("fits");
        let naive = naive_partition(&profiles, &map);
        let naive_latency = (0..3)
            .map(|j| naive.region_load_bytes[j] * 8.0 / bw.bytes_per_cycle[j])
            .fold(0.0f64, f64::max);
        // The naive split is a feasible point of the LP, so the LP optimum
        // cannot be worse (up to PWL discretization slack).
        assert!(
            lp.predicted_cycles <= naive_latency * 1.10 + 1.0,
            "case {case}: lp {} vs naive {}",
            lp.predicted_cycles,
            naive_latency
        );
    }
}

#[test]
fn placement_is_injective_and_region_consistent() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xBA_0003);
    for case in 0..32 {
        let tables = random_tables(&mut rng);
        let profiles = profiles_for(&tables);
        let cfg = ReCrossConfig::default();
        let map = RegionMap::new(&cfg);
        let bw = RegionBandwidth::from_map(&map, &cfg.dram, 256, true);
        let d = bandwidth_aware_partition(&profiles, &map, &bw, 8.0, 4).expect("fits");
        let placement = Placement::new(&profiles, d, map);
        let mut seen = std::collections::HashSet::new();
        for (t, p) in profiles.iter().enumerate() {
            let step = (p.spec.rows / 37).max(1);
            for rank in (0..p.spec.rows).step_by(step as usize) {
                let region = placement.region_of_rank(t, rank);
                let addr = placement.addr_of_rank(t, rank);
                assert_eq!(
                    placement.region_map().region_of(&addr),
                    region,
                    "case {case}"
                );
                assert!(
                    seen.insert((addr.rank, addr.bank_group, addr.bank, addr.row, addr.col_byte)),
                    "case {case}: collision at table {t} rank {rank}"
                );
            }
        }
    }
}
