//! Property tests of the encodings: the 82-bit NMP ISA round-trips for all
//! field values, the Feistel permutation stays a bijection with a working
//! inverse for arbitrary domains, and the trace text format round-trips
//! arbitrary traces.

use proptest::prelude::*;

use recross_repro::recross::isa::{DdrCmd, NmpInstruction, Opcode};
use recross_repro::workload::io::{read_trace, write_trace};
use recross_repro::workload::trace::{Batch, EmbeddingOp, FeistelPermutation, Trace};
use recross_repro::workload::EmbeddingTableSpec;

fn arb_instruction() -> impl Strategy<Value = NmpInstruction> {
    (
        prop::sample::select(vec![
            Opcode::Sum,
            Opcode::WeightedSum,
            Opcode::Average,
            Opcode::Concat,
            Opcode::QuantizedSum,
        ]),
        prop::sample::select(vec![DdrCmd::Act, DdrCmd::Rd, DdrCmd::Pre]),
        0u64..(1u64 << 34),
        0u8..8,
        any::<f32>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(opcode, ddr_cmd, addr, vsize, weight, batch, last, bg, bank)| {
                NmpInstruction {
                    opcode,
                    ddr_cmd,
                    addr,
                    vsize,
                    weight,
                    batch_tag: batch,
                    last_tag: last,
                    bg_tag: bg || bank, // bankTag requires BGTag
                    bank_tag: bank,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn isa_roundtrips(inst in arb_instruction()) {
        let word = inst.encode();
        prop_assert_eq!(word >> 82, 0, "word fits in 82 bits");
        let back = NmpInstruction::decode(word).expect("own encoding decodes");
        // f32 NaNs compare unequal; compare bitwise.
        prop_assert_eq!(back.weight.to_bits(), inst.weight.to_bits());
        let (mut a, mut b) = (back, inst);
        a.weight = 0.0;
        b.weight = 0.0;
        prop_assert_eq!(a, b);
    }

    #[test]
    fn feistel_bijective_with_inverse(n in 1u64..200_000, key in any::<u64>()) {
        let p = FeistelPermutation::new(n, key);
        // Sampled probes: image in range, inverse recovers.
        let step = (n / 64).max(1);
        for x in (0..n).step_by(step as usize) {
            let y = p.permute(x);
            prop_assert!(y < n);
            prop_assert_eq!(p.invert(y), x);
        }
    }

    #[test]
    fn feistel_small_domains_fully_bijective(n in 1u64..512, key in any::<u64>()) {
        let p = FeistelPermutation::new(n, key);
        let mut seen = vec![false; n as usize];
        for x in 0..n {
            let y = p.permute(x) as usize;
            prop_assert!(!seen[y], "duplicate image");
            seen[y] = true;
        }
    }

    #[test]
    fn trace_text_roundtrips(
        rows in prop::collection::vec(2u64..500, 1..4),
        ops in prop::collection::vec(
            (0usize..4, prop::collection::vec((0u64..500, any::<f32>()), 1..6)),
            0..10,
        ),
    ) {
        let tables: Vec<EmbeddingTableSpec> =
            rows.iter().map(|&r| EmbeddingTableSpec::new(r, 8)).collect();
        let batch = Batch {
            ops: ops
                .into_iter()
                .map(|(t, pairs)| {
                    let table = t % tables.len();
                    EmbeddingOp {
                        table,
                        indices: pairs
                            .iter()
                            .map(|&(i, _)| i % tables[table].rows)
                            .collect(),
                        weights: pairs.iter().map(|&(_, w)| w).collect(),
                    }
                })
                .collect(),
        };
        let trace = Trace { tables, batches: vec![batch] };
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).expect("write");
        let back = read_trace(buf.as_slice()).expect("read back");
        prop_assert_eq!(&back.tables, &trace.tables);
        prop_assert_eq!(back.ops(), trace.ops());
        for (a, b) in trace.iter_ops().zip(back.iter_ops()) {
            prop_assert_eq!(&a.indices, &b.indices);
            for (x, y) in a.weights.iter().zip(&b.weights) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}
