//! Randomized tests of the encodings: the 82-bit NMP ISA round-trips for all
//! field values, the Feistel permutation stays a bijection with a working
//! inverse for arbitrary domains, and the trace text format round-trips
//! arbitrary traces.
//!
//! Cases come from the in-repo deterministic PRNG, so every run re-checks
//! the same seeded case set (no external property-testing dependency).

use recross_repro::recross::isa::{DdrCmd, NmpInstruction, Opcode};
use recross_repro::workload::io::{read_trace, write_trace};
use recross_repro::workload::rng::Xoshiro256pp;
use recross_repro::workload::trace::{Batch, EmbeddingOp, FeistelPermutation, Trace};
use recross_repro::workload::EmbeddingTableSpec;

fn random_instruction(rng: &mut Xoshiro256pp) -> NmpInstruction {
    const OPCODES: [Opcode; 5] = [
        Opcode::Sum,
        Opcode::WeightedSum,
        Opcode::Average,
        Opcode::Concat,
        Opcode::QuantizedSum,
    ];
    const CMDS: [DdrCmd; 3] = [DdrCmd::Act, DdrCmd::Rd, DdrCmd::Pre];
    let bg = rng.next_bool(0.5);
    let bank = rng.next_bool(0.5);
    NmpInstruction {
        opcode: OPCODES[rng.next_bounded(5) as usize],
        ddr_cmd: CMDS[rng.next_bounded(3) as usize],
        addr: rng.next_bounded(1 << 34),
        vsize: rng.next_bounded(8) as u8,
        // Arbitrary bit patterns, including NaNs/infinities/subnormals.
        weight: f32::from_bits(rng.next_u64() as u32),
        batch_tag: rng.next_bool(0.5),
        last_tag: rng.next_bool(0.5),
        bg_tag: bg || bank, // bankTag requires BGTag
        bank_tag: bank,
    }
}

#[test]
fn isa_roundtrips() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x15A_0001);
    for case in 0..256 {
        let inst = random_instruction(&mut rng);
        let word = inst.encode();
        assert_eq!(word >> 82, 0, "case {case}: word fits in 82 bits");
        let back = NmpInstruction::decode(word).expect("own encoding decodes");
        // f32 NaNs compare unequal; compare bitwise.
        assert_eq!(back.weight.to_bits(), inst.weight.to_bits(), "case {case}");
        let (mut a, mut b) = (back, inst);
        a.weight = 0.0;
        b.weight = 0.0;
        assert_eq!(a, b, "case {case}");
    }
}

#[test]
fn feistel_bijective_with_inverse() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x0FE1_57E1);
    for case in 0..256 {
        let n = 1 + rng.next_bounded(200_000 - 1);
        let key = rng.next_u64();
        let p = FeistelPermutation::new(n, key);
        // Sampled probes: image in range, inverse recovers.
        let step = (n / 64).max(1);
        for x in (0..n).step_by(step as usize) {
            let y = p.permute(x);
            assert!(y < n, "case {case}: n={n}");
            assert_eq!(p.invert(y), x, "case {case}: n={n} x={x}");
        }
    }
}

#[test]
fn feistel_small_domains_fully_bijective() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x0FE1_57E2);
    for case in 0..256 {
        let n = 1 + rng.next_bounded(511);
        let key = rng.next_u64();
        let p = FeistelPermutation::new(n, key);
        let mut seen = vec![false; n as usize];
        for x in 0..n {
            let y = p.permute(x) as usize;
            assert!(!seen[y], "case {case}: duplicate image (n={n})");
            seen[y] = true;
        }
    }
}

#[test]
fn trace_text_roundtrips() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x7EA7_7097);
    for case in 0..64 {
        let num_tables = 1 + rng.next_bounded(3) as usize;
        let tables: Vec<EmbeddingTableSpec> = (0..num_tables)
            .map(|_| EmbeddingTableSpec::new(2 + rng.next_bounded(498), 8))
            .collect();
        let num_ops = rng.next_bounded(10) as usize;
        let batch = Batch {
            ops: (0..num_ops)
                .map(|_| {
                    let table = rng.next_bounded(tables.len() as u64) as usize;
                    let pooling = 1 + rng.next_bounded(5) as usize;
                    EmbeddingOp {
                        table,
                        indices: (0..pooling)
                            .map(|_| rng.next_bounded(tables[table].rows))
                            .collect(),
                        weights: (0..pooling)
                            .map(|_| f32::from_bits(rng.next_u64() as u32))
                            .collect(),
                    }
                })
                .collect(),
        };
        let trace = Trace {
            tables,
            batches: vec![batch],
        };
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).expect("write");
        let back = read_trace(buf.as_slice()).expect("read back");
        assert_eq!(&back.tables, &trace.tables, "case {case}");
        assert_eq!(back.ops(), trace.ops(), "case {case}");
        for (a, b) in trace.iter_ops().zip(back.iter_ops()) {
            assert_eq!(&a.indices, &b.indices, "case {case}");
            for (x, y) in a.weights.iter().zip(&b.weights) {
                assert_eq!(x.to_bits(), y.to_bits(), "case {case}");
            }
        }
    }
}
