//! Cross-crate system invariants: conservation laws that must hold across
//! any accelerator run, serialization round-trips through the full
//! pipeline, and multi-channel consistency.

use recross_repro::dram::DramConfig;
use recross_repro::nmp::accel::EmbeddingAccelerator;
use recross_repro::nmp::multichannel::{run_multichannel, ChannelPlan};
use recross_repro::nmp::{AccessProfile, CpuBaseline, Fafnir, RecNmp, TensorDimm, Trim};
use recross_repro::recross::config::ReCrossConfig;
use recross_repro::recross::engine::ReCross;
use recross_repro::recross::profile::{analytic_profiles, empirical_profiles};
use recross_repro::workload::io::{read_trace, write_trace};
use recross_repro::workload::{Trace, TraceGenerator};

fn generator() -> TraceGenerator {
    TraceGenerator::criteo_scaled(32, 1000)
        .batch_size(4)
        .pooling(16)
        .batches(2)
}

fn all_reports(trace: &Trace, g: &TraceGenerator) -> Vec<recross_repro::nmp::RunReport> {
    let d = DramConfig::ddr5_4800();
    let profile = AccessProfile::from_trace(trace);
    let mut out = vec![
        CpuBaseline::new(d.clone()).run(trace),
        TensorDimm::new(d.clone()).run(trace),
        RecNmp::new(d.clone()).run(trace),
        Trim::bank_group(d.clone())
            .with_profile(profile.clone())
            .run(trace),
        Trim::bank(d.clone()).with_profile(profile).run(trace),
        Fafnir::new(d.clone()).run(trace),
    ];
    let mut rc =
        ReCross::new(ReCrossConfig::default_d(d), analytic_profiles(g), 4.0).expect("fits");
    out.push(rc.run(trace));
    out
}

#[test]
fn conservation_laws_hold_for_every_architecture() {
    let g = generator();
    let trace = g.generate(41);
    let gathered_bits = trace.gathered_bytes() * 8;
    for r in all_reports(&trace, &g) {
        // Every lookup accounted.
        assert_eq!(r.lookups as usize, trace.lookups(), "{}", r.name);
        assert_eq!(r.ops as usize, trace.ops(), "{}", r.name);
        // DRAM reads cannot be less than the gathered data minus cache hits
        // (TensorDIMM reads more: per-rank slices round up to bursts).
        if r.cache_hits == 0 && r.name != "TensorDIMM" {
            assert!(
                r.counters.rd_wr_bits >= gathered_bits,
                "{}: read {} < gathered {}",
                r.name,
                r.counters.rd_wr_bits,
                gathered_bits
            );
        }
        // NMP architectures move less off-chip than the CPU's full gather.
        if r.name != "CPU" {
            assert!(
                r.counters.io_bits < gathered_bits,
                "{}: io {} vs gathered {}",
                r.name,
                r.counters.io_bits,
                gathered_bits
            );
        }
        // Timing sanity.
        assert!(r.cycles > 0, "{}", r.name);
        assert!(r.op_latency.max <= r.cycles, "{}", r.name);
        assert!(r.energy.total_pj() > 0.0, "{}", r.name);
        // Node loads cover all DRAM lookups.
        let node_total: u64 = r.node_loads.iter().sum();
        assert!(node_total + r.cache_hits >= r.lookups, "{}", r.name);
    }
}

#[test]
fn trace_io_roundtrip_preserves_simulation() {
    let g = generator();
    let trace = g.generate(42);
    let mut buf = Vec::new();
    write_trace(&trace, &mut buf).expect("write");
    let back = read_trace(buf.as_slice()).expect("parse");
    // The round-tripped trace simulates identically (deterministic engine).
    let d = DramConfig::ddr5_4800();
    let a = Trim::bank_group(d.clone()).run(&trace);
    let b = Trim::bank_group(d).run(&back);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.counters, b.counters);
}

#[test]
fn multichannel_preserves_results_and_speeds_up() {
    let g = generator();
    let trace = g.generate(43);
    let plan = ChannelPlan::balance_by_load(&trace, 2);
    let one = {
        let profile = AccessProfile::from_trace(&trace);
        Trim::bank(DramConfig::ddr5_4800())
            .with_profile(profile)
            .run(&trace)
    };
    let two = run_multichannel(&plan, &trace, |_, sub| {
        let profile = AccessProfile::from_trace(sub);
        Trim::bank(DramConfig::ddr5_4800()).with_profile(profile)
    });
    assert_eq!(two.lookups, one.lookups);
    assert!(two.cycles < one.cycles, "{} vs {}", two.cycles, one.cycles);
    // Total DRAM traffic is conserved across the split.
    assert_eq!(two.counters.rd_wr_bits, one.counters.rd_wr_bits);
}

#[test]
fn multichannel_recross_matches_golden() {
    let g = generator();
    let trace = g.generate(44);
    let plan = ChannelPlan::balance_by_load(&trace, 2);
    // Functional check per channel: sub-traces reduce to the golden model.
    for (sub, _orig) in plan.split(&trace) {
        if sub.ops() == 0 {
            continue;
        }
        let profile = AccessProfile::from_trace(&sub);
        let profiles = empirical_profiles(&sub.tables, &profile);
        let mut sys = ReCross::new(
            ReCrossConfig::default_d(DramConfig::ddr5_4800()),
            profiles,
            4.0,
        )
        .expect("fits");
        let got = sys.compute_results(&sub);
        let want = recross_repro::workload::model::reduce_trace(&sub);
        recross_repro::workload::model::assert_results_close(&got, &want, 1e-3);
    }
}

#[test]
fn fafnir_slots_between_tensordimm_and_trim() {
    let g = generator();
    let trace = g.generate(45);
    let r = all_reports(&trace, &g);
    let by_name = |n: &str| r.iter().find(|x| x.name == n).unwrap().cycles;
    // Rank-level FAFNIR cannot beat the in-chip TRiM levels.
    assert!(by_name("FAFNIR") > by_name("TRiM-G"));
    assert!(by_name("FAFNIR") > by_name("TRiM-B"));
}

#[test]
fn determinism_across_runs() {
    let g = generator();
    let trace = g.generate(46);
    let d = DramConfig::ddr5_4800();
    let a = CpuBaseline::new(d.clone()).run(&trace);
    let b = CpuBaseline::new(d).run(&trace);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.counters, b.counters);
    let mut s1 = ReCross::new(ReCrossConfig::default(), analytic_profiles(&g), 4.0).expect("fits");
    let mut s2 = ReCross::new(ReCrossConfig::default(), analytic_profiles(&g), 4.0).expect("fits");
    assert_eq!(s1.run(&trace).cycles, s2.run(&trace).cycles);
}
