//! Cross-crate functional correctness: every accelerator's gather-reduce
//! results must match the golden model, so a placement or dispatch bug can
//! never hide behind plausible timing numbers.

use recross_repro::dram::DramConfig;
use recross_repro::nmp::accel::EmbeddingAccelerator;
use recross_repro::nmp::{AccessProfile, CpuBaseline, RecNmp, TensorDimm, Trim};
use recross_repro::recross::config::ReCrossConfig;
use recross_repro::recross::engine::ReCross;
use recross_repro::recross::profile::{analytic_profiles, empirical_profiles};
use recross_repro::workload::model::{assert_results_close, reduce_trace};
use recross_repro::workload::TraceGenerator;

fn generator() -> TraceGenerator {
    TraceGenerator::criteo_scaled(32, 1000)
        .batch_size(4)
        .pooling(16)
}

#[test]
fn all_baselines_match_golden() {
    let g = generator();
    let trace = g.generate(77);
    let golden = reduce_trace(&trace);
    let dram = DramConfig::ddr5_4800();
    let profile = AccessProfile::from_trace(&trace);
    let mut accels: Vec<Box<dyn EmbeddingAccelerator>> = vec![
        Box::new(CpuBaseline::new(dram.clone())),
        Box::new(TensorDimm::new(dram.clone())),
        Box::new(RecNmp::new(dram.clone())),
        Box::new(Trim::bank_group(dram.clone()).with_profile(profile.clone())),
        Box::new(Trim::bank(dram).with_profile(profile)),
    ];
    for a in &mut accels {
        let results = a.compute_results(&trace);
        let name = a.name().to_owned();
        let dev = assert_results_close(&results, &golden, 1e-3);
        assert!(dev.is_finite(), "{name}");
    }
}

#[test]
fn recross_matches_golden_under_every_config() {
    let g = generator();
    let trace = g.generate(78);
    let golden = reduce_trace(&trace);
    for cfg in ReCrossConfig::exploration_set(DramConfig::ddr5_4800()) {
        let name = cfg.name.clone();
        let profiles = analytic_profiles(&g);
        let mut sys = ReCross::new(cfg, profiles, 4.0).unwrap_or_else(|e| panic!("{name}: {e}"));
        let results = sys.compute_results(&trace);
        assert_results_close(&results, &golden, 1e-3);
    }
}

#[test]
fn recross_matches_golden_with_empirical_profiles() {
    // The empirical path: profile a training trace, place by the measured
    // popularity, then serve a *different* trace correctly.
    let g = generator();
    let training = g.generate(100);
    let serving = g.generate(200);
    let profile = AccessProfile::from_trace(&training);
    let profiles = empirical_profiles(g.tables(), &profile);
    let mut sys = ReCross::new(ReCrossConfig::default(), profiles, 4.0).expect("fits");
    let results = sys.compute_results(&serving);
    assert_results_close(&results, &reduce_trace(&serving), 1e-3);
    // And it still simulates.
    let report = sys.run(&serving);
    assert!(report.cycles > 0);
}

#[test]
fn ablation_toggles_preserve_results() {
    let g = generator();
    let trace = g.generate(79);
    let golden = reduce_trace(&trace);
    for cfg in [
        ReCrossConfig::base(DramConfig::ddr5_4800()),
        ReCrossConfig::default().without_sap(),
        ReCrossConfig::default().without_bwp(),
        ReCrossConfig::default().without_las(),
    ] {
        let profiles = analytic_profiles(&g);
        let mut sys = ReCross::new(cfg, profiles, 4.0).expect("fits");
        assert_results_close(&sys.compute_results(&trace), &golden, 1e-3);
    }
}
