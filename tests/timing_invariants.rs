//! Property tests of the DRAM substrate: whatever the scheduler does, the
//! emitted command stream must satisfy every timing constraint when
//! replayed by the independent checker, and key structural invariants must
//! hold for arbitrary request mixes.

use proptest::prelude::*;

use recross_repro::dram::check::check_trace;
use recross_repro::dram::controller::{BusScope, Controller, ReadRequest, SchedulePolicy};
use recross_repro::dram::{DramConfig, PhysAddr};

fn arb_request() -> impl Strategy<Value = ReadRequest> {
    (
        0u32..2,
        0u32..8,
        0u32..4,
        0u32..2048,
        0u32..120,
        1u32..5,
        prop::sample::select(vec![
            BusScope::Channel,
            BusScope::Rank,
            BusScope::BankGroup,
            BusScope::Bank,
        ]),
        any::<bool>(),
        any::<bool>(),
        0u64..500,
    )
        .prop_map(
            |(rank, bg, bank, row, col, bursts, dest, _salp, autopre, ready)| {
                // SALP support is a per-bank hardware property: derive it
                // from the bank id (banks 0/2 of featured groups have it),
                // mirroring the ReCross B-region carve-out. Writes take the
                // global row-buffer path (never SALP).
                let salp = bank % 2 == 0 && bg < 4;
                let write = !salp && row % 5 == 0;
                ReadRequest {
                    id: 0,
                    addr: PhysAddr {
                        channel: 0,
                        rank,
                        bank_group: bg,
                        bank,
                        row,
                        col_byte: col * 64,
                    },
                    bursts,
                    ready_at: ready,
                    dest,
                    salp,
                    auto_precharge: autopre && !salp,
                    write,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_schedule_is_timing_valid(
        reqs in prop::collection::vec(arb_request(), 1..120),
        policy in prop::sample::select(vec![
            SchedulePolicy::Fcfs,
            SchedulePolicy::FrFcfs,
            SchedulePolicy::LocalityAware,
        ]),
        window in 1usize..20,
        global in prop::option::of(1usize..32),
    ) {
        let cfg = DramConfig::ddr5_4800();
        let mut ctl = Controller::new(cfg.clone(), policy).with_bank_window(window);
        if let Some(w) = global {
            ctl = ctl.with_global_window(w);
        }
        ctl.record_trace();
        for (i, mut r) in reqs.iter().copied().enumerate() {
            r.id = i as u64;
            ctl.enqueue(r);
        }
        let done = ctl.run();
        prop_assert_eq!(done.len(), reqs.len(), "every request completes");
        let trace = ctl.trace().expect("recording enabled");
        let violations = check_trace(cfg.topology, cfg.timing, &trace);
        prop_assert!(
            violations.is_empty(),
            "violations: {:?}",
            &violations[..violations.len().min(3)]
        );
    }

    #[test]
    fn completions_respect_ready_time(
        reqs in prop::collection::vec(arb_request(), 1..60),
    ) {
        let cfg = DramConfig::ddr5_4800();
        let t = cfg.timing;
        let mut ctl = Controller::new(cfg, SchedulePolicy::FrFcfs);
        for (i, mut r) in reqs.iter().copied().enumerate() {
            r.id = i as u64;
            ctl.enqueue(r);
        }
        for c in ctl.run() {
            let r = &reqs[c.id as usize];
            // Data cannot finish before ready + CAS (write) latency + burst.
            let cas = if r.write { t.t_cwl } else { t.t_cl };
            prop_assert!(c.done_at >= r.ready_at + cas + t.t_bl);
        }
    }

    #[test]
    fn stats_are_consistent(
        reqs in prop::collection::vec(arb_request(), 1..80),
    ) {
        let cfg = DramConfig::ddr5_4800();
        let mut ctl = Controller::new(cfg.clone(), SchedulePolicy::FrFcfs);
        for (i, mut r) in reqs.iter().copied().enumerate() {
            r.id = i as u64;
            ctl.enqueue(r);
        }
        let done = ctl.run();
        let stats = ctl.stats();
        // Every request classified exactly once.
        prop_assert_eq!(
            stats.row_hits + stats.row_misses,
            reqs.len() as u64
        );
        // Read bits match the requested bursts.
        let bursts: u64 = reqs.iter().map(|r| u64::from(r.bursts)).sum();
        prop_assert_eq!(stats.energy.rd_wr_bits, bursts * 64 * 8);
        // Bank loads account for all requests.
        prop_assert_eq!(
            stats.bank_loads.iter().sum::<u64>(),
            reqs.len() as u64
        );
        // Finish is the last completion.
        let last = done.iter().map(|c| c.done_at).max().unwrap_or(0);
        prop_assert!(stats.finish >= last);
    }
}
