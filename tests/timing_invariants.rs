//! Randomized tests of the DRAM substrate: whatever the scheduler does, the
//! emitted command stream must satisfy every timing constraint when
//! replayed by the independent checker, and key structural invariants must
//! hold for arbitrary request mixes.
//!
//! Cases come from the in-repo deterministic PRNG, so every run re-checks
//! the same seeded case set (no external property-testing dependency).

use recross_repro::dram::check::check_trace;
use recross_repro::dram::controller::{BusScope, Controller, ReadRequest, SchedulePolicy};
use recross_repro::dram::{DramConfig, PhysAddr};
use recross_repro::workload::rng::Xoshiro256pp;

const SCOPES: [BusScope; 4] = [
    BusScope::Channel,
    BusScope::Rank,
    BusScope::BankGroup,
    BusScope::Bank,
];

const POLICIES: [SchedulePolicy; 3] = [
    SchedulePolicy::Fcfs,
    SchedulePolicy::FrFcfs,
    SchedulePolicy::LocalityAware,
];

fn random_request(rng: &mut Xoshiro256pp) -> ReadRequest {
    let bg = rng.next_bounded(8) as u32;
    let bank = rng.next_bounded(4) as u32;
    let row = rng.next_bounded(2048) as u32;
    // SALP support is a per-bank hardware property: derive it from the bank
    // id (banks 0/2 of featured groups have it), mirroring the ReCross
    // B-region carve-out. Writes take the global row-buffer path (never
    // SALP).
    let salp = bank.is_multiple_of(2) && bg < 4;
    let write = !salp && row.is_multiple_of(5);
    let auto_precharge = rng.next_bool(0.5);
    ReadRequest {
        id: 0,
        addr: PhysAddr {
            channel: 0,
            rank: rng.next_bounded(2) as u32,
            bank_group: bg,
            bank,
            row,
            col_byte: rng.next_bounded(120) as u32 * 64,
        },
        bursts: 1 + rng.next_bounded(4) as u32,
        ready_at: rng.next_bounded(500),
        dest: SCOPES[rng.next_bounded(4) as usize],
        salp,
        auto_precharge: auto_precharge && !salp,
        write,
    }
}

fn random_requests(rng: &mut Xoshiro256pp, max: u64) -> Vec<ReadRequest> {
    let n = 1 + rng.next_bounded(max - 1) as usize;
    (0..n).map(|_| random_request(rng)).collect()
}

fn assert_schedule_valid(
    reqs: &[ReadRequest],
    policy: SchedulePolicy,
    window: usize,
    global: Option<usize>,
    label: &str,
) {
    let cfg = DramConfig::ddr5_4800();
    let mut ctl = Controller::new(cfg.clone(), policy).with_bank_window(window);
    if let Some(w) = global {
        ctl = ctl.with_global_window(w);
    }
    ctl.record_trace();
    for (i, mut r) in reqs.iter().copied().enumerate() {
        r.id = i as u64;
        ctl.enqueue(r);
    }
    let done = ctl.run();
    assert_eq!(done.len(), reqs.len(), "{label}: every request completes");
    let trace = ctl.trace().expect("recording enabled");
    let violations = check_trace(cfg.topology, cfg.timing, &trace);
    assert!(
        violations.is_empty(),
        "{label}: violations: {:?}",
        &violations[..violations.len().min(3)]
    );
}

#[test]
fn any_schedule_is_timing_valid() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xD3A2_0001);
    for case in 0..48 {
        let reqs = random_requests(&mut rng, 120);
        let policy = POLICIES[rng.next_bounded(3) as usize];
        let window = 1 + rng.next_bounded(19) as usize;
        let global = if rng.next_bool(0.5) {
            Some(1 + rng.next_bounded(31) as usize)
        } else {
            None
        };
        assert_schedule_valid(&reqs, policy, window, global, &format!("case {case}"));
    }
}

#[test]
fn regression_same_address_back_to_back_salp() {
    // A past shrink: two back-to-back requests to the *same* row of one
    // SALP bank under FCFS with a 1-deep bank window — the tightest
    // serialization the controller supports.
    let addr = PhysAddr {
        channel: 0,
        rank: 0,
        bank_group: 2,
        bank: 2,
        row: 0,
        col_byte: 0,
    };
    let base = ReadRequest {
        id: 0,
        addr,
        bursts: 1,
        ready_at: 0,
        dest: BusScope::Channel,
        salp: true,
        auto_precharge: false,
        write: false,
    };
    assert_schedule_valid(&[base, base], SchedulePolicy::Fcfs, 1, None, "regression");
}

#[test]
#[should_panic(expected = "mixed SALP modes")]
fn mixed_salp_modes_on_one_bank_rejected() {
    // SALP is a per-bank hardware property: enqueueing the same bank with
    // salp on and off is a model-misuse contract violation.
    let cfg = DramConfig::ddr5_4800();
    let mut ctl = Controller::new(cfg, SchedulePolicy::Fcfs);
    let base = ReadRequest {
        id: 0,
        addr: PhysAddr {
            channel: 0,
            rank: 0,
            bank_group: 2,
            bank: 2,
            row: 0,
            col_byte: 0,
        },
        bursts: 1,
        ready_at: 0,
        dest: BusScope::Channel,
        salp: true,
        auto_precharge: false,
        write: false,
    };
    ctl.enqueue(base);
    ctl.enqueue(ReadRequest {
        id: 1,
        salp: false,
        ..base
    });
}

#[test]
fn completions_respect_ready_time() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xD3A2_0002);
    for case in 0..48 {
        let reqs = random_requests(&mut rng, 60);
        let cfg = DramConfig::ddr5_4800();
        let t = cfg.timing;
        let mut ctl = Controller::new(cfg, SchedulePolicy::FrFcfs);
        for (i, mut r) in reqs.iter().copied().enumerate() {
            r.id = i as u64;
            ctl.enqueue(r);
        }
        for c in ctl.run() {
            let r = &reqs[c.id as usize];
            // Data cannot finish before ready + CAS (write) latency + burst.
            let cas = if r.write { t.t_cwl } else { t.t_cl };
            assert!(
                c.done_at >= r.ready_at + cas + t.t_bl,
                "case {case}: done {} < ready {} + cas {} + bl {}",
                c.done_at,
                r.ready_at,
                cas,
                t.t_bl
            );
        }
    }
}

#[test]
fn stats_are_consistent() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xD3A2_0003);
    for case in 0..48 {
        let reqs = random_requests(&mut rng, 80);
        let cfg = DramConfig::ddr5_4800();
        let mut ctl = Controller::new(cfg.clone(), SchedulePolicy::FrFcfs);
        for (i, mut r) in reqs.iter().copied().enumerate() {
            r.id = i as u64;
            ctl.enqueue(r);
        }
        let done = ctl.run();
        let stats = ctl.stats();
        // Every request classified exactly once.
        assert_eq!(
            stats.row_hits + stats.row_misses,
            reqs.len() as u64,
            "case {case}"
        );
        // Read bits match the requested bursts.
        let bursts: u64 = reqs.iter().map(|r| u64::from(r.bursts)).sum();
        assert_eq!(stats.energy.rd_wr_bits, bursts * 64 * 8, "case {case}");
        // Bank loads account for all requests.
        assert_eq!(
            stats.bank_loads.iter().sum::<u64>(),
            reqs.len() as u64,
            "case {case}"
        );
        // Finish is the last completion.
        let last = done.iter().map(|c| c.done_at).max().unwrap_or(0);
        assert!(stats.finish >= last, "case {case}");
    }
}
