//! End-to-end DLRM inference serving scenario (paper Figure 1).
//!
//! A recommendation request = dense features + sparse categorical indices.
//! The bottom MLP embeds the dense features, ReCross accelerates the
//! embedding layer's gather-reduce, the top MLP produces the CTR. This
//! example serves a stream of request batches, reports tail latencies, and
//! validates the CTR outputs end to end against a host-only run.
//!
//! ```text
//! cargo run --release --example inference_server
//! ```

use recross_repro::dram::DramConfig;
use recross_repro::nmp::accel::EmbeddingAccelerator;
use recross_repro::nmp::CpuBaseline;
use recross_repro::recross::config::ReCrossConfig;
use recross_repro::recross::engine::ReCross;
use recross_repro::recross::profile::analytic_profiles;
use recross_repro::workload::model::MlpSpec;
use recross_repro::workload::TraceGenerator;

const DENSE_FEATURES: u32 = 13; // Criteo's 13 dense features
const DIM: u32 = 64;

fn main() {
    let dram = DramConfig::ddr5_4800();
    let generator = TraceGenerator::criteo_scaled(DIM, 100)
        .batch_size(8)
        .pooling(40)
        .batches(8); // 8 request batches arriving back to back
    let trace = generator.generate(2026);

    let bottom = MlpSpec::dlrm_bottom(DENSE_FEATURES, DIM);
    // Top MLP consumes bottom output + the 26 pooled embeddings.
    let top = MlpSpec::dlrm_top(DIM * 27);
    println!(
        "DLRM: bottom MLP {:?} ({} MACs), top MLP {:?} ({} MACs), embedding layer = the bottleneck",
        bottom.widths,
        bottom.macs(),
        top.widths,
        top.macs()
    );

    // Embedding layer on ReCross vs host-only.
    let profiles = analytic_profiles(&generator);
    let mut accel =
        ReCross::new(ReCrossConfig::default_d(dram.clone()), profiles, 8.0).expect("fits");
    let accel_report = accel.run(&trace);
    let host_report = CpuBaseline::new(dram).run(&trace);

    // Produce the actual CTRs through both paths and compare.
    let pooled_accel = accel.compute_results(&trace);
    let pooled_host = recross_repro::workload::model::reduce_trace(&trace);
    let ctr = |pooled: &[Vec<f32>]| -> Vec<f32> {
        // One CTR per sample: concatenate the bottom-MLP output with the
        // sample's 26 pooled embeddings (ops are emitted per sample, table
        // by table).
        let dense_out = bottom.forward(&vec![0.25; DENSE_FEATURES as usize]);
        pooled
            .chunks(26)
            .map(|sample| {
                let mut features = dense_out.clone();
                for pooled_vec in sample {
                    features.extend_from_slice(pooled_vec);
                }
                top.forward(&features)[0]
            })
            .collect()
    };
    let ctr_accel = ctr(&pooled_accel);
    let ctr_host = ctr(&pooled_host);
    let max_dev = ctr_accel
        .iter()
        .zip(&ctr_host)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);

    println!(
        "\nembedding layer: ReCross {:.1} us vs CPU {:.1} us → {:.2}x",
        accel_report.ns / 1e3,
        host_report.ns / 1e3,
        host_report.ns / accel_report.ns
    );
    println!(
        "served {} samples; CTR agreement within {:.2e} ({} CTRs compared)",
        ctr_accel.len(),
        max_dev,
        ctr_accel.len()
    );
    assert!(max_dev < 1e-2, "accelerated CTR must match host CTR");
    println!("end-to-end functional check passed");
}
