//! Deployment capacity planning: which ReCross configuration should a
//! cluster operator provision for a given model and latency target?
//!
//! Sweeps the paper's Figure 14 configurations (d, c1–c5) on the target
//! workload, reporting throughput, added silicon, and area efficiency —
//! reproducing the paper's conclusion that ReCross-d is the sweet spot.
//!
//! ```text
//! cargo run --release --example capacity_planner
//! ```

use recross_repro::dram::DramConfig;
use recross_repro::nmp::accel::EmbeddingAccelerator;
use recross_repro::nmp::AreaModel;
use recross_repro::recross::config::ReCrossConfig;
use recross_repro::recross::engine::ReCross;
use recross_repro::recross::profile::analytic_profiles;
use recross_repro::workload::TraceGenerator;

fn main() {
    let dram = DramConfig::ddr5_4800();
    let generator = TraceGenerator::criteo_scaled(64, 100)
        .batch_size(16)
        .pooling(80)
        .batches(2);
    let trace = generator.generate(7);
    let area_model = AreaModel::default();

    println!(
        "{:<12} {:>7} {:>12} {:>14} {:>14} {:>16}",
        "config", "R:G:B", "us/trace", "Mlookups/s", "PE area mm²", "Mlookups/s/mm²"
    );
    let mut best: Option<(String, f64)> = None;
    for cfg in ReCrossConfig::exploration_set(dram.clone()) {
        let name = cfg.name.clone();
        let (r, g, b) = cfg.region_banks();
        let area = area_model.recross(cfg.bg_pes_per_rank, cfg.bank_pes_per_rank);
        let profiles = analytic_profiles(&generator);
        let mut sys = ReCross::new(cfg, profiles, 16.0).expect("fits");
        let report = sys.run(&trace);
        let mlps = report.lookups as f64 / report.ns * 1e3; // M lookups/s
        let eff = mlps / area.total_mm2();
        println!(
            "{name:<12} {:>7} {:>12.1} {:>14.1} {:>14.2} {:>16.2}",
            format!("{r}:{g}:{b}"),
            report.ns / 1e3,
            mlps,
            area.total_mm2(),
            eff
        );
        if best.as_ref().is_none_or(|(_, e)| eff > *e) {
            best = Some((name, eff));
        }
    }
    let (winner, _) = best.expect("at least one config");
    println!("\nmost area-efficient configuration: {winner}");
    println!("(the paper's §5.4 finds ReCross-d the sweet spot: adding more bank-level");
    println!(" PEs only accelerates tail data, while area grows linearly)");
}
