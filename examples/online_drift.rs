//! Online popularity drift (paper §4.5): new rows arrive, old favourites
//! cool down, yesterday's tail goes viral. The dynamic scheduler counts
//! accesses per interval and promotes newly-hot rows into the B-region.
//!
//! ```text
//! cargo run --release --example online_drift
//! ```

use recross_repro::dram::DramConfig;
use recross_repro::recross::config::ReCrossConfig;
use recross_repro::recross::dynamic::DynamicScheduler;
use recross_repro::recross::engine::ReCross;
use recross_repro::recross::profile::analytic_profiles;
use recross_repro::workload::TraceGenerator;

fn main() {
    let dram = DramConfig::ddr5_4800();
    // Phase 1: the distribution the system was partitioned for.
    let day_one = TraceGenerator::criteo_scaled(64, 100)
        .batch_size(8)
        .pooling(40)
        .batches(2);
    let profiles = analytic_profiles(&day_one);
    let system = ReCross::new(ReCrossConfig::default_d(dram), profiles, 8.0).expect("fits");

    // Phase 2: the live stream drifts — a *different seed* reshuffles which
    // concrete rows are sampled hot beyond the profiled head.
    let drifted = TraceGenerator::criteo_scaled(64, 100)
        .batch_size(8)
        .pooling(40)
        .batches(4)
        .generate(777);

    let mut sched = DynamicScheduler::new(5_000, 200, 10_000);
    let reevals = sched.observe(&drifted, &system);
    println!(
        "observed {} lookups across {} re-evaluation intervals",
        drifted.lookups(),
        reevals
    );
    println!(
        "promotions: {}, demotions: {}, currently promoted rows: {}",
        sched.promotions(),
        sched.demotions(),
        sched.promoted_len()
    );

    // Online inserts land cold in the R-region (§4.5).
    for row in 0..5 {
        sched.insert_row(2, 10_000 + row);
    }
    println!(
        "inserted 5 new rows online → stored cold (R-region): {}",
        sched.inserts()
    );
    assert!(sched.promotions() > 0, "drift must trigger promotions");
    println!("dynamic re-scheduling keeps the B-region aligned with live popularity");
}
