//! Quickstart: build a DLRM embedding workload, stand up ReCross, and
//! compare it with the strongest baseline (TRiM-B) on the same trace.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use recross_repro::dram::DramConfig;
use recross_repro::nmp::accel::EmbeddingAccelerator;
use recross_repro::nmp::{AccessProfile, Trim};
use recross_repro::recross::config::ReCrossConfig;
use recross_repro::recross::engine::ReCross;
use recross_repro::recross::profile::analytic_profiles;
use recross_repro::workload::TraceGenerator;

fn main() {
    // 1. The workload: a 1/100-scale Criteo-Kaggle embedding layer,
    //    64-dimension vectors, pooling factor 80, batches of 32 samples.
    let generator = TraceGenerator::criteo_scaled(64, 100)
        .batch_size(32)
        .pooling(80)
        .batches(2);
    let trace = generator.generate(42);
    println!(
        "workload: {} embedding ops, {} lookups, {:.1} MiB gathered",
        trace.ops(),
        trace.lookups(),
        trace.gathered_bytes() as f64 / (1024.0 * 1024.0)
    );

    // 2. The memory system: the paper's Table 2 DDR5-4800 channel.
    let dram = DramConfig::ddr5_4800();

    // 3. ReCross: profile → bandwidth-aware partition → placement → run.
    let profiles = analytic_profiles(&generator);
    let mut system = ReCross::new(ReCrossConfig::default_d(dram.clone()), profiles, 32.0)
        .expect("embedding tables fit the memory regions");
    let recross = system.run(&trace);

    // 4. The strongest baseline on the same trace.
    let profile = AccessProfile::from_trace(&trace);
    let trim_b = Trim::bank(dram).with_profile(profile).run(&trace);

    println!(
        "\n{:<10} {:>12} {:>10} {:>10} {:>12}",
        "arch", "cycles", "us", "rowhit", "energy (uJ)"
    );
    for r in [&trim_b, &recross] {
        println!(
            "{:<10} {:>12} {:>10.1} {:>10.2} {:>12.2}",
            r.name,
            r.cycles,
            r.ns / 1_000.0,
            r.row_hit_rate,
            r.energy.total_pj() / 1e6
        );
    }
    println!(
        "\nReCross speedup over TRiM-B: {:.2}x (paper reports 1.8x at full scale)",
        recross.speedup_over(&trim_b)
    );

    // 5. Functional check: the accelerated reduction equals the golden model.
    let golden = recross_repro::workload::model::reduce_trace(&trace);
    let results = system.compute_results(&trace);
    let dev = recross_repro::workload::model::assert_results_close(&results, &golden, 1e-3);
    println!("functional check passed (max FP deviation {dev:.2e})");
}
