//! Trace tooling: generate a workload trace, characterize its skew, export
//! it (and a command-timeline visualization) to files, and re-import it
//! bit-exactly — the workflow for bringing external production traces into
//! the simulator.
//!
//! ```text
//! cargo run --release --example trace_tools
//! ```
//!
//! Outputs `target/trace_tools/trace.txt` and
//! `target/trace_tools/commands.json` (open the latter in
//! https://ui.perfetto.dev).

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter};

use recross_repro::dram::controller::{Controller, SchedulePolicy};
use recross_repro::dram::traceviz::write_chrome_trace;
use recross_repro::dram::DramConfig;
use recross_repro::nmp::accel::EmbeddingAccelerator;
use recross_repro::nmp::Trim;
use recross_repro::workload::io::{read_trace, write_trace};
use recross_repro::workload::stats::{entropy_bits, gini, normalized_entropy};
use recross_repro::workload::TraceGenerator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::path::Path::new("target/trace_tools");
    std::fs::create_dir_all(dir)?;

    // 1. Generate and characterize.
    let generator = TraceGenerator::criteo_scaled(64, 1000)
        .batch_size(4)
        .pooling(40);
    let trace = generator.generate(123);
    println!("{} ops, {} lookups", trace.ops(), trace.lookups());
    for table in [2usize, 8, 25] {
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for op in trace.iter_ops().filter(|op| op.table == table) {
            for &row in &op.indices {
                *counts.entry(row).or_insert(0) += 1;
            }
        }
        let v: Vec<u64> = counts.values().copied().collect();
        println!(
            "table {table:>2}: {} distinct rows touched, gini {:.3}, entropy {:.2} bits (normalized {:.2})",
            v.len(),
            gini(&v),
            entropy_bits(&v),
            normalized_entropy(&v)
        );
    }

    // 2. Export / re-import bit-exactly.
    let path = dir.join("trace.txt");
    write_trace(&trace, BufWriter::new(File::create(&path)?))?;
    let back = read_trace(BufReader::new(File::open(&path)?))?;
    assert_eq!(back.ops(), trace.ops());
    println!(
        "round-tripped {} ops through {}",
        back.ops(),
        path.display()
    );

    // 3. Simulate the imported trace and dump a command-timeline
    //    visualization of the first requests.
    let cfg = DramConfig::ddr5_4800();
    let report = Trim::bank_group(cfg.clone()).run(&back);
    println!(
        "TRiM-G on imported trace: {} cycles, row-hit rate {:.2}",
        report.cycles, report.row_hit_rate
    );
    let mut ctl = Controller::new(cfg.clone(), SchedulePolicy::FrFcfs);
    ctl.record_trace();
    let plans = Trim::bank_group(cfg.clone()).plans(&back);
    for (i, plan) in plans.iter().take(64).enumerate() {
        for r in &plan.reads {
            ctl.enqueue(recross_repro::dram::controller::ReadRequest {
                id: i as u64,
                addr: r.addr,
                bursts: r.bursts,
                ready_at: 0,
                dest: r.dest,
                salp: r.salp,
                auto_precharge: r.auto_precharge,
                write: r.write,
            });
        }
    }
    ctl.run();
    let json = dir.join("commands.json");
    write_chrome_trace(
        &ctl.trace().unwrap(),
        &cfg,
        BufWriter::new(File::create(&json)?),
    )?;
    println!(
        "command timeline written to {} (open in Perfetto)",
        json.display()
    );
    Ok(())
}
